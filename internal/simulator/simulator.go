// Package simulator evaluates task placement plans under a deterministic
// contention model, standing in for the paper's AWS/Flink testbed.
//
// The model follows the slot-oriented resource sharing the paper measures:
// tasks co-located on a worker share its CPU, disk-I/O and network bandwidth.
// Demands are linear in processed rate; when the offered load exceeds a
// worker's effective capacity in any dimension, backpressure propagates to
// the sources, which admit only the sustainable fraction of their target
// rate. Multi-tenant deployments are resolved with max-min fair progressive
// filling across queries, so a single hot worker throttles exactly the
// queries placed on it.
//
// Two second-order effects observed in the paper's empirical study (§3.3)
// are modeled explicitly:
//
//   - Co-location penalty: each additional resource-intensive task sharing a
//     worker reduces the worker's effective capacity in that dimension
//     (garbage collection interference for CPU, RocksDB compaction
//     interference for disk I/O). The penalty is linear in the number of
//     intensive tasks beyond the first.
//   - Contention slowdown: tasks on an over-demanded worker take
//     proportionally longer per record, inflating the "useful time" that
//     auto-scaling controllers such as DS2 observe. This is the mechanism by
//     which poor placement degrades scaling accuracy (paper §6.4).
package simulator

import (
	"fmt"
	"math"
	"sort"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

// Config tunes the contention model. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	// Gamma is the per-dimension co-location penalty: with k resource-
	// intensive tasks in a dimension on one worker, the worker's effective
	// capacity in that dimension is cap / (1 + gamma*(k-1)).
	Gamma costmodel.Vector
	// IntensiveShare classifies a task as intensive in a dimension when its
	// demand exceeds this fraction of a fair per-slot capacity share.
	IntensiveShare float64
	// RemoteDelaySec is the network propagation + serialization delay added
	// per stage, weighted by the stage's remote link fraction.
	RemoteDelaySec float64
	// MaxUtilization caps the utilization used in the queueing-delay term to
	// keep latency finite at saturation.
	MaxUtilization float64
	// ThreadCores is the maximum CPU a single task can consume: a slot is
	// one processing thread, so regardless of free cores on the worker a
	// task's rate is capped at ThreadCores / unitCPU.
	ThreadCores float64
}

// DefaultConfig returns the calibrated contention model used by the
// experiment harness.
func DefaultConfig() Config {
	return Config{
		Gamma:          costmodel.Vector{CPU: 0.12, IO: 0.10, Net: 0.03},
		IntensiveShare: 0.8,
		RemoteDelaySec: 0.002,
		MaxUtilization: 0.98,
		ThreadCores:    1.0,
	}
}

// QueryDeployment is one query deployed on the shared cluster.
type QueryDeployment struct {
	// Name identifies the query in the result maps.
	Name string
	// Phys is the query's physical execution graph.
	Phys *dataflow.PhysicalGraph
	// Plan maps the query's tasks to cluster worker indices.
	Plan *dataflow.Plan
	// SourceRates holds the target event rate of each source operator.
	SourceRates map[dataflow.OperatorID]float64
}

// TaskKey identifies a task across queries.
type TaskKey struct {
	Query string
	Task  dataflow.TaskID
}

// TaskMetrics is the simulator's per-task steady-state telemetry, shaped
// like the metrics a DS2-style controller scrapes from a live system.
type TaskMetrics struct {
	// Worker is the worker index hosting the task.
	Worker int
	// ObservedInRate is the records/second the task actually processes.
	ObservedInRate float64
	// ObservedOutRate is the records/second the task emits.
	ObservedOutRate float64
	// Slowdown is the per-record processing time inflation caused by
	// resource contention on the task's worker (>= 1).
	Slowdown float64
	// UsefulFraction is the fraction of time the task appears busy
	// processing records (observed rate x inflated per-record time).
	UsefulFraction float64
	// TrueProcessingRate is the capacity estimate a DS2-style controller
	// derives: ObservedInRate / UsefulFraction. Contention deflates it.
	TrueProcessingRate float64
	// StateBytesRate is the task's observed state-access bandwidth
	// (bytes/s), the metric an online profiler divides by ObservedInRate
	// to estimate the per-record IO cost.
	StateBytesRate float64
	// EmittedBytesRate is the task's total emitted bandwidth (bytes/s),
	// including worker-local traffic.
	EmittedBytesRate float64
	// ApparentCPUPerRecord is the per-record CPU time as visible to a
	// profiler (unit cost inflated by contention slowdown).
	ApparentCPUPerRecord float64
}

// QueryMetrics summarizes one query's steady state.
type QueryMetrics struct {
	// Target is the aggregate source target rate.
	Target float64
	// Throughput is the aggregate admitted source rate (= Target when the
	// deployment keeps up).
	Throughput float64
	// Backpressure is the fraction of offered load the sources could not
	// admit, in [0,1]; the paper reports this as "backpressure at the
	// source".
	Backpressure float64
	// LatencySec is the critical-path record latency estimate.
	LatencySec float64
	// Admission is the max-min fair admission factor in [0,1].
	Admission float64
	// BottleneckWorker is the worker index that limited the query
	// (-1 when the query meets its target).
	BottleneckWorker int
}

// Result is the full steady-state evaluation outcome.
type Result struct {
	Queries map[string]QueryMetrics
	Tasks   map[TaskKey]TaskMetrics
	// WorkerUtilization is the post-admission per-dimension utilization of
	// every worker, relative to effective (penalty-adjusted) capacity.
	WorkerUtilization []costmodel.Vector
	// EffectiveCapacity is each worker's capacity after co-location
	// penalties.
	EffectiveCapacity []costmodel.Vector
}

// taskDemand is a task's full-rate (admission = 1) resource demand.
type taskDemand struct {
	key        TaskKey
	query      int
	worker     int
	inRate     float64 // offered input rate at full admission
	outRate    float64
	demand     costmodel.Vector // cpu sec/s, io bytes/s, net bytes/s (remote only)
	unitCPU    float64
	unitIO     float64
	unitNet    float64
	remoteFrac float64
}

// Evaluate computes the steady state of the given deployments sharing c.
func Evaluate(deps []QueryDeployment, c *cluster.Cluster, cfg Config) (*Result, error) {
	if len(deps) == 0 {
		return nil, fmt.Errorf("simulator: no deployments")
	}
	if cfg.IntensiveShare <= 0 || cfg.MaxUtilization <= 0 || cfg.MaxUtilization >= 1 || cfg.ThreadCores <= 0 {
		return nil, fmt.Errorf("simulator: invalid config %+v", cfg)
	}
	if err := validate(deps, c); err != nil {
		return nil, err
	}

	// Full-admission demands per task.
	var tasks []taskDemand
	targets := make([]float64, len(deps))
	for qi, d := range deps {
		g := d.Phys.Logical
		rates, err := dataflow.PropagateRates(g, d.SourceRates)
		if err != nil {
			return nil, fmt.Errorf("simulator: query %q: %w", d.Name, err)
		}
		for _, src := range g.Sources() {
			targets[qi] += d.SourceRates[src.ID]
		}
		for _, t := range d.Phys.Tasks() {
			op := g.Operator(t.Op)
			in := rates.TaskInRate(g, t.Op)
			out := rates.TaskOutRate(g, t.Op)
			w := d.Plan.MustWorker(t)
			remote, total := 0, 0
			for _, ch := range d.Phys.Out(t) {
				total++
				if d.Plan.MustWorker(ch.To) != w {
					remote++
				}
			}
			rf := 0.0
			if total > 0 {
				rf = float64(remote) / float64(total)
			}
			tasks = append(tasks, taskDemand{
				key:    TaskKey{Query: d.Name, Task: t},
				query:  qi,
				worker: w,
				inRate: in, outRate: out,
				demand: costmodel.Vector{
					CPU: in * op.Cost.CPU,
					IO:  in * op.Cost.IO,
					Net: in * op.Cost.Net * rf,
				},
				unitCPU:    op.Cost.CPU,
				unitIO:     op.Cost.IO,
				unitNet:    op.Cost.Net,
				remoteFrac: rf,
			})
		}
	}

	effCap := effectiveCapacities(tasks, c, cfg)
	beta, bottleneck := progressiveFilling(tasks, effCap, c.NumWorkers(), len(deps), cfg.ThreadCores)

	// Post-admission per-worker loads and utilizations.
	loads := make([]costmodel.Vector, c.NumWorkers())
	for _, t := range tasks {
		loads[t.worker] = loads[t.worker].Add(t.demand.Scale(beta[t.query]))
	}
	util := make([]costmodel.Vector, c.NumWorkers())
	for w := range util {
		util[w] = costmodel.Vector{
			CPU: ratio(loads[w].CPU, effCap[w].CPU),
			IO:  ratio(loads[w].IO, effCap[w].IO),
			Net: ratio(loads[w].Net, effCap[w].Net),
		}
	}

	// Full-demand (admission=1) worker loads determine the contention
	// slowdown: a worker asked for 1.8x its capacity stretches per-record
	// processing by 1.8x.
	fullLoads := make([]costmodel.Vector, c.NumWorkers())
	for _, t := range tasks {
		fullLoads[t.worker] = fullLoads[t.worker].Add(t.demand)
	}

	res := &Result{
		Queries:           make(map[string]QueryMetrics, len(deps)),
		Tasks:             make(map[TaskKey]TaskMetrics, len(tasks)),
		WorkerUtilization: util,
		EffectiveCapacity: effCap,
	}
	for _, t := range tasks {
		b := beta[t.query]
		slow := slowdown(t, fullLoads[t.worker], effCap[t.worker])
		obs := t.inRate * b
		useful := math.Min(1, obs*t.unitCPU*slow)
		trueRate := math.Inf(1)
		if t.unitCPU > 0 {
			trueRate = 1 / (t.unitCPU * slow)
		}
		res.Tasks[t.key] = TaskMetrics{
			Worker:               t.worker,
			ObservedInRate:       obs,
			ObservedOutRate:      t.outRate * b,
			Slowdown:             slow,
			UsefulFraction:       useful,
			TrueProcessingRate:   trueRate,
			StateBytesRate:       obs * t.unitIO,
			EmittedBytesRate:     obs * t.unitNet,
			ApparentCPUPerRecord: t.unitCPU * slow,
		}
	}
	for qi, d := range deps {
		res.Queries[d.Name] = QueryMetrics{
			Target:           targets[qi],
			Throughput:       targets[qi] * beta[qi],
			Backpressure:     1 - beta[qi],
			LatencySec:       latency(deps[qi], tasks, qi, util, cfg),
			Admission:        beta[qi],
			BottleneckWorker: bottleneck[qi],
		}
	}
	return res, nil
}

func ratio(a, b float64) float64 {
	if b <= 0 {
		if a > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return a / b
}

// validate checks that plans are complete and the combined slot usage per
// worker respects capacity across all queries.
func validate(deps []QueryDeployment, c *cluster.Cluster) error {
	seen := make(map[string]bool, len(deps))
	slotUse := make([]int, c.NumWorkers())
	for _, d := range deps {
		if d.Name == "" {
			return fmt.Errorf("simulator: deployment with empty name")
		}
		if seen[d.Name] {
			return fmt.Errorf("simulator: duplicate query name %q", d.Name)
		}
		seen[d.Name] = true
		if d.Plan == nil || d.Phys == nil {
			return fmt.Errorf("simulator: query %q missing plan or graph", d.Name)
		}
		for _, t := range d.Phys.Tasks() {
			w, ok := d.Plan.Worker(t)
			if !ok {
				return fmt.Errorf("simulator: query %q task %v unassigned", d.Name, t)
			}
			if w < 0 || w >= c.NumWorkers() {
				return fmt.Errorf("simulator: query %q task %v on invalid worker %d", d.Name, t, w)
			}
			slotUse[w]++
		}
	}
	for w, used := range slotUse {
		if used > c.Worker(w).Slots {
			return fmt.Errorf("simulator: worker %d hosts %d tasks, has %d slots", w, used, c.Worker(w).Slots)
		}
	}
	return nil
}

// effectiveCapacities applies the co-location penalty: counting, per worker
// and dimension, tasks whose full demand exceeds IntensiveShare times the
// fair per-slot share of that worker's capacity.
func effectiveCapacities(tasks []taskDemand, c *cluster.Cluster, cfg Config) []costmodel.Vector {
	intensive := make([]struct{ cpu, io, net int }, c.NumWorkers())
	for _, t := range tasks {
		w := c.Worker(t.worker)
		fair := costmodel.Vector{
			CPU: w.CPU / float64(w.Slots),
			IO:  w.IOBandwidth / float64(w.Slots),
			Net: w.NetBandwidth / float64(w.Slots),
		}
		if t.demand.CPU > cfg.IntensiveShare*fair.CPU {
			intensive[t.worker].cpu++
		}
		if t.demand.IO > cfg.IntensiveShare*fair.IO {
			intensive[t.worker].io++
		}
		if t.demand.Net > cfg.IntensiveShare*fair.Net {
			intensive[t.worker].net++
		}
	}
	out := make([]costmodel.Vector, c.NumWorkers())
	penalty := func(k int, gamma float64) float64 {
		if k <= 1 {
			return 1
		}
		return 1 / (1 + gamma*float64(k-1))
	}
	for w := range out {
		cw := c.Worker(w)
		out[w] = costmodel.Vector{
			CPU: cw.CPU * penalty(intensive[w].cpu, cfg.Gamma.CPU),
			IO:  cw.IOBandwidth * penalty(intensive[w].io, cfg.Gamma.IO),
			Net: cw.NetBandwidth * penalty(intensive[w].net, cfg.Gamma.Net),
		}
	}
	return out
}

// progressiveFilling computes max-min fair admission factors per query:
// all queries grow together until a worker saturates (or a task hits its
// single-thread CPU limit); queries limited by a saturated resource freeze
// at the current level; the rest keep growing, capped at 1. It returns the
// admission factors and, per query, the worker index that froze it (-1 if
// it reached its target).
func progressiveFilling(tasks []taskDemand, effCap []costmodel.Vector, numWorkers, numQueries int, threadCores float64) ([]float64, []int) {
	beta := make([]float64, numQueries)
	bottleneck := make([]int, numQueries)
	for i := range bottleneck {
		bottleneck[i] = -1
	}
	active := make([]bool, numQueries)
	for i := range active {
		active[i] = true
	}
	// Demand matrices: frozen load and active growth rate per worker/dim.
	const eps = 1e-12
	for iter := 0; iter < numQueries+1; iter++ {
		anyActive := false
		for _, a := range active {
			anyActive = anyActive || a
		}
		if !anyActive {
			break
		}
		frozen := make([]costmodel.Vector, numWorkers)
		grow := make([]costmodel.Vector, numWorkers)
		for _, t := range tasks {
			if active[t.query] {
				grow[t.worker] = grow[t.worker].Add(t.demand)
			} else {
				frozen[t.worker] = frozen[t.worker].Add(t.demand.Scale(beta[t.query]))
			}
		}
		// Largest common level tau for active queries.
		tau := 1.0
		// Single-thread limits: a task cannot exceed threadCores worth of
		// CPU regardless of free capacity on its worker.
		for _, t := range tasks {
			if !active[t.query] || t.demand.CPU <= eps {
				continue
			}
			if lim := threadCores / t.demand.CPU; lim < tau {
				tau = lim
			}
		}
		for w := 0; w < numWorkers; w++ {
			for _, dim := range []struct{ cap, fixed, g float64 }{
				{effCap[w].CPU, frozen[w].CPU, grow[w].CPU},
				{effCap[w].IO, frozen[w].IO, grow[w].IO},
				{effCap[w].Net, frozen[w].Net, grow[w].Net},
			} {
				if dim.g <= eps {
					continue
				}
				t := (dim.cap - dim.fixed) / dim.g
				if t < tau {
					tau = t
				}
			}
		}
		if tau < 0 {
			tau = 0
		}
		for q := range active {
			if active[q] {
				beta[q] = tau
			}
		}
		if tau >= 1 {
			for q := range active {
				if active[q] {
					beta[q] = 1
					active[q] = false
				}
			}
			break
		}
		// Freeze queries whose task hit its thread limit.
		for _, t := range tasks {
			if !active[t.query] || t.demand.CPU <= eps {
				continue
			}
			if t.demand.CPU*tau >= threadCores-1e-9*(1+threadCores) {
				active[t.query] = false
				bottleneck[t.query] = t.worker
			}
		}
		// Freeze queries with tasks on a binding worker.
		for w := 0; w < numWorkers; w++ {
			load := frozen[w].Add(grow[w].Scale(tau))
			binding := load.CPU >= effCap[w].CPU-1e-9*(1+effCap[w].CPU) && grow[w].CPU > eps ||
				load.IO >= effCap[w].IO-1e-9*(1+effCap[w].IO) && grow[w].IO > eps ||
				load.Net >= effCap[w].Net-1e-9*(1+effCap[w].Net) && grow[w].Net > eps
			if !binding {
				continue
			}
			for _, t := range tasks {
				if t.worker == w && active[t.query] {
					active[t.query] = false
					bottleneck[t.query] = w
				}
			}
		}
	}
	return beta, bottleneck
}

// slowdown computes the per-record processing time inflation for a task:
// the worst over-demand factor, at full offered load, among the dimensions
// the task actually uses on its worker.
func slowdown(t taskDemand, fullLoad, effCap costmodel.Vector) float64 {
	s := 1.0
	if t.demand.CPU > 0 {
		s = math.Max(s, ratio(fullLoad.CPU, effCap.CPU))
	}
	if t.demand.IO > 0 {
		s = math.Max(s, ratio(fullLoad.IO, effCap.IO))
	}
	if t.demand.Net > 0 {
		s = math.Max(s, ratio(fullLoad.Net, effCap.Net))
	}
	if math.IsInf(s, 1) || s < 1 {
		return 1
	}
	return s
}

// latency estimates the critical-path record latency of one query: for each
// operator, the worst per-task service time (per-record CPU cost inflated by
// contention and a queueing factor from the worker's utilization) plus the
// network delay weighted by the stage's remote fraction; summed along the
// longest source-to-sink path.
func latency(dep QueryDeployment, tasks []taskDemand, qi int, util []costmodel.Vector, cfg Config) float64 {
	g := dep.Phys.Logical
	// Per-operator worst stage latency.
	stage := make(map[dataflow.OperatorID]float64)
	for _, t := range tasks {
		if t.query != qi {
			continue
		}
		u := util[t.worker]
		rho := math.Max(u.CPU, math.Max(u.IO, u.Net))
		if rho > cfg.MaxUtilization {
			rho = cfg.MaxUtilization
		}
		service := t.unitCPU / (1 - rho)
		net := cfg.RemoteDelaySec * t.remoteFrac
		if s := service + net; s > stage[t.key.Task.Op] {
			stage[t.key.Task.Op] = s
		}
	}
	// Longest path over the DAG.
	order, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	dist := make(map[dataflow.OperatorID]float64, len(order))
	best := 0.0
	for _, id := range order {
		d := dist[id] + stage[id]
		for _, down := range g.Downstream(id) {
			if d > dist[down] {
				dist[down] = d
			}
		}
		if d > best {
			best = d
		}
	}
	return best
}

// SortedQueryNames returns result query names in sorted order, a convenience
// for deterministic reporting.
func (r *Result) SortedQueryNames() []string {
	names := make([]string, 0, len(r.Queries))
	for n := range r.Queries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
