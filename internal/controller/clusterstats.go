package controller

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"capsys/internal/metrics"
	"capsys/internal/telemetry"
)

// This file is the coordinator side of the cluster observability plane.
// Worker processes piggyback compact metric snapshots on their HEARTBEAT
// frames and ship batched tracer events in TRACE frames; the coordinator
// merges both into its own telemetry hub, so one scrape of the
// coordinator's /metrics shows every worker's live series (keyed
// "worker.<id>.<name>" plus "cluster.<name>" rollups) and one trace file
// holds the causally-ordered cluster timeline.
//
// Monotone values (counters, time accumulators, histogram buckets) travel
// as deltas since the previous heartbeat, so merging is a plain add and a
// worker restart inside one control connection cannot double-count.
// Gauges and callback-gauge samples are absolutes — last write wins.

// wireStats is one worker's metric delta since its previous heartbeat.
type wireStats struct {
	// Counters and TimesNS are deltas of monotone series (counter values,
	// meter counts under "<name>.count", time accumulators in nanoseconds).
	Counters map[string]int64
	TimesNS  map[string]int64
	// Gauges are point-in-time absolutes.
	Gauges map[string]float64
	// FnGauges are the worker's callback gauges evaluated at sample time
	// (per-task saturation, queue depths, credit-gate levels).
	FnGauges []telemetry.GaugeSample
	// Hists are interval histogram snapshots (current minus previous),
	// shipped only when the interval observed anything.
	Hists map[string]telemetry.HistogramSnapshot
}

// wireHeartbeat is the HEARTBEAT payload. Stats is nil when the worker
// runs without a telemetry hub; the coordinator treats the frame as pure
// liveness then.
type wireHeartbeat struct {
	Stats *wireStats
}

// wireTrace is the TRACE payload: a batch of tracer events stamped with
// the origin's identity (Src, WSeq), plus how many events the shipping
// feed has dropped so far. Shipping is best-effort by design — the feed
// never blocks the instrumented code — so Dropped is the honesty counter.
type wireTrace struct {
	Events  []telemetry.Event
	Dropped int64
}

// ---------------------------------------------------------------------------
// worker side: heartbeat sampler

// hbSampler turns a worker's telemetry hub into per-heartbeat deltas. It
// is used only from the single heartbeat goroutine, so it needs no locking
// of its own (the underlying snapshots are consistent).
type hbSampler struct {
	tel   *telemetry.Telemetry
	prev  metrics.TypedValues
	prevH map[string]telemetry.HistogramSnapshot
}

func newHBSampler(tel *telemetry.Telemetry) *hbSampler {
	return &hbSampler{tel: tel, prevH: make(map[string]telemetry.HistogramSnapshot)}
}

// sample returns the delta since the previous call (nil when the worker
// has no hub or nothing changed is still a valid, possibly empty, stats
// block — the heartbeat carries it regardless, keeping the wire shape
// uniform).
func (s *hbSampler) sample() *wireStats {
	if s.tel == nil {
		return nil
	}
	cur := s.tel.Registry().TypedSnapshot()
	out := &wireStats{
		Counters: make(map[string]int64),
		TimesNS:  make(map[string]int64),
		Gauges:   cur.Gauges,
		FnGauges: s.tel.SampleGaugeFuncs(),
		Hists:    make(map[string]telemetry.HistogramSnapshot),
	}
	for n, v := range cur.Counters {
		if d := v - s.prev.Counters[n]; d > 0 {
			out.Counters[n] = d
		}
	}
	for n, v := range cur.Times {
		if d := v - s.prev.Times[n]; d > 0 {
			out.TimesNS[n] = int64(d)
		}
	}
	for _, name := range s.tel.HistogramNames() {
		//capslint:allow metricnames iterating the hub's own registered histogram names, not inventing new ones
		snap := s.tel.Histogram(name).Snapshot()
		delta := snap.Sub(s.prevH[name])
		s.prevH[name] = snap
		if delta.Count > 0 {
			out.Hists[name] = delta
		}
	}
	s.prev = cur
	return out
}

// ---------------------------------------------------------------------------
// coordinator side: aggregation

// clusterAgg merges worker heartbeat stats and trace batches into the
// coordinator's telemetry hub. A zero clusterAgg (nil hub) is disabled and
// every method is a cheap no-op.
type clusterAgg struct {
	tel *telemetry.Telemetry
}

func (a *clusterAgg) enabled() bool { return a.tel != nil }

// applyStats folds one worker's delta into the cluster registry: monotone
// series add under both the per-worker name and the cluster rollup; gauges
// and callback gauges land per-worker only (absolutes across workers have
// no meaningful sum).
func (a *clusterAgg) applyStats(worker string, s *wireStats) {
	if a.tel == nil || s == nil {
		return
	}
	reg := a.tel.Registry()
	for n, d := range s.Counters {
		//capslint:allow metricnames per-worker series are runtime-keyed by the canonical WorkerMetricName/ClusterMetricName helpers
		reg.Counter(metrics.WorkerMetricName(worker, n)).Inc(d)
		//capslint:allow metricnames cluster rollup of the same runtime-keyed series
		reg.Counter(metrics.ClusterMetricName(n)).Inc(d)
	}
	for n, ns := range s.TimesNS {
		//capslint:allow metricnames per-worker series are runtime-keyed by the canonical WorkerMetricName/ClusterMetricName helpers
		reg.Time(metrics.WorkerMetricName(worker, n)).Add(time.Duration(ns))
		//capslint:allow metricnames cluster rollup of the same runtime-keyed series
		reg.Time(metrics.ClusterMetricName(n)).Add(time.Duration(ns))
	}
	for n, v := range s.Gauges {
		//capslint:allow metricnames per-worker series are runtime-keyed by the canonical WorkerMetricName helper
		reg.Gauge(metrics.WorkerMetricName(worker, n)).Set(v)
	}
	for _, g := range s.FnGauges {
		labels := g.Labels
		if _, ok := labels["worker"]; !ok {
			labels = make(map[string]string, len(g.Labels)+1)
			for k, v := range g.Labels {
				labels[k] = v
			}
			labels["worker"] = worker
		}
		v := g.Value
		//capslint:allow metricnames the family is the worker's own literal family, relayed verbatim
		a.tel.SetGaugeFunc(g.Family, labels, func() float64 { return v })
	}
	for n, snap := range s.Hists {
		//capslint:allow metricnames histogram families are the worker's own literal names, merged under the same name
		if err := a.tel.Histogram(n).Absorb(snap); err != nil {
			reg.Counter("cluster.histogram_merge_errors").Inc(1)
		}
	}
}

// applyTrace re-emits one worker's trace batch into the cluster tracer.
// Events keep their origin identity (Src, WSeq) and gain a fresh cluster
// sequence number and arrival timestamp — the merged timeline is ordered
// by arrival, causally consistent per origin via WSeq.
func (a *clusterAgg) applyTrace(worker string, wt *wireTrace) {
	if a.tel == nil || wt == nil {
		return
	}
	tr := a.tel.Tracer()
	for _, ev := range wt.Events {
		tr.Emit(ev)
	}
	if wt.Dropped > 0 {
		//capslint:allow metricnames per-worker series are runtime-keyed by the canonical WorkerMetricName helper
		a.tel.Registry().Gauge(metrics.WorkerMetricName(worker, "trace_dropped")).Set(float64(wt.Dropped))
	}
}

// ---------------------------------------------------------------------------
// coordinator HTTP surface

// WorkerHealth is one worker's liveness as judged by the coordinator.
type WorkerHealth struct {
	Worker          int    `json:"worker"`
	ID              string `json:"id"`
	Addr            string `json:"addr"`
	Alive           bool   `json:"alive"`
	LastHeartbeatMS int64  `json:"last_heartbeat_ms"`
	Epoch           int64  `json:"epoch"`
}

// HealthReport is the /healthz body: cluster-level liveness plus the
// per-worker detail behind it.
type HealthReport struct {
	Healthy  bool           `json:"healthy"`
	Expected int            `json:"expected"`
	Joined   int            `json:"joined"`
	Attempt  int64          `json:"attempt"`
	Workers  []WorkerHealth `json:"workers"`
}

// connSnapshot copies the joined-connection slice under the join lock, so
// HTTP handlers can read it while WaitJoined is still accepting.
func (co *Coordinator) connSnapshot() []*coordConn {
	co.connMu.Lock()
	defer co.connMu.Unlock()
	out := make([]*coordConn, len(co.conns))
	copy(out, co.conns)
	return out
}

// Health reports cluster liveness: a worker is alive when its control
// connection has not errored and its last frame (heartbeats included) is
// within the heartbeat timeout — the same criterion the supervision loop
// uses, so /healthz flips for a SIGKILLed worker within one timeout.
func (co *Coordinator) Health() HealthReport {
	conns := co.connSnapshot()
	now := co.clk()
	rep := HealthReport{
		Expected: co.n,
		Joined:   len(conns),
		Attempt:  co.curAttempt.Load(),
		Healthy:  len(conns) >= co.n,
	}
	for w, cc := range conns {
		age := now.Sub(time.Unix(0, cc.lastSeen.Load()))
		alive := cc.alive.Load() && age <= co.opts.HeartbeatTimeout
		if !alive {
			rep.Healthy = false
		}
		id := ""
		if w < len(co.spec.Workers) {
			id = co.spec.Workers[w].ID
		}
		rep.Workers = append(rep.Workers, WorkerHealth{
			Worker:          w,
			ID:              id,
			Addr:            cc.addr,
			Alive:           alive,
			LastHeartbeatMS: age.Milliseconds(),
			Epoch:           cc.lastEpoch.Load(),
		})
	}
	return rep
}

// ClusterHandler serves the coordinator's observability surface:
//
//	/metrics  cluster-merged Prometheus exposition (per-worker + rollups)
//	/events   the merged cluster trace ring as JSON
//	/healthz  liveness JSON; 200 when every expected worker is joined and
//	          heartbeat-fresh, 503 otherwise
//	/workers  the joined-worker roster as JSON
func (co *Coordinator) ClusterHandler() http.Handler {
	mux := http.NewServeMux()
	hub := co.opts.Telemetry.Handler()
	mux.Handle("/metrics", hub)
	mux.Handle("/events", hub)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		rep := co.Health()
		w.Header().Set("Content-Type", "application/json")
		if !rep.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(rep)
	})
	mux.HandleFunc("/workers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(co.Health().Workers)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "capsys coordinator: /metrics (Prometheus), /events (JSON), /healthz, /workers")
	})
	return mux
}
