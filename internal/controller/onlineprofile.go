package controller

import (
	"fmt"

	"capsys/internal/dataflow"
	"capsys/internal/simulator"
)

// OnlineProfiler maintains exponentially weighted moving averages of each
// operator's per-record unit resource costs from live task telemetry,
// implementing the paper's proposed online-profiling extension (§5.1: "we
// could use our current infrastructure to have the Metrics Collector
// periodically feed metrics to DS2 and CAPS, to support online profiling").
//
// Estimates are derived the same way the offline profiling phase derives
// them: the operator's measured resource rate divided by its observed input
// rate. The CPU estimate therefore inflates under contention exactly as a
// real measurement would; placing with online-profiled costs remains sound
// because the inflation disappears once CAPS spreads the hot tasks.
type OnlineProfiler struct {
	// Alpha is the EWMA smoothing factor in (0,1]; higher weights the
	// latest snapshot more.
	alpha float64
	costs map[dataflow.OperatorID]dataflow.UnitCost
	seen  map[dataflow.OperatorID]bool
}

// NewOnlineProfiler creates a profiler with the given EWMA factor.
func NewOnlineProfiler(alpha float64) (*OnlineProfiler, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("controller: EWMA alpha %v outside (0,1]", alpha)
	}
	return &OnlineProfiler{
		alpha: alpha,
		costs: make(map[dataflow.OperatorID]dataflow.UnitCost),
		seen:  make(map[dataflow.OperatorID]bool),
	}, nil
}

// Observe folds one simulator snapshot for the named query into the
// estimates. Tasks with (near) zero observed rate are skipped: a starved
// task carries no per-record cost signal.
func (p *OnlineProfiler) Observe(res *simulator.Result, query string) {
	type agg struct {
		in, cpuTime, ioBytes, netBytes float64
		n                              int
	}
	perOp := make(map[dataflow.OperatorID]*agg)
	for k, tm := range res.Tasks {
		if k.Query != query || tm.ObservedInRate < 1e-9 {
			continue
		}
		a := perOp[k.Task.Op]
		if a == nil {
			a = &agg{}
			perOp[k.Task.Op] = a
		}
		a.in += tm.ObservedInRate
		a.cpuTime += tm.ApparentCPUPerRecord * tm.ObservedInRate
		a.ioBytes += tm.StateBytesRate
		a.netBytes += tm.EmittedBytesRate
		a.n++
	}
	for op, a := range perOp {
		sample := dataflow.UnitCost{
			CPU: a.cpuTime / a.in,
			IO:  a.ioBytes / a.in,
			Net: a.netBytes / a.in,
		}
		if !p.seen[op] {
			p.costs[op] = sample
			p.seen[op] = true
			continue
		}
		prev := p.costs[op]
		p.costs[op] = dataflow.UnitCost{
			CPU: p.alpha*sample.CPU + (1-p.alpha)*prev.CPU,
			IO:  p.alpha*sample.IO + (1-p.alpha)*prev.IO,
			Net: p.alpha*sample.Net + (1-p.alpha)*prev.Net,
		}
	}
}

// Cost returns the current estimate for op and whether one exists.
func (p *OnlineProfiler) Cost(op dataflow.OperatorID) (dataflow.UnitCost, bool) {
	c, ok := p.costs[op]
	return c, ok
}

// Apply returns a clone of g with the profiled estimates installed where
// available; operators never observed keep their existing costs.
func (p *OnlineProfiler) Apply(g *dataflow.LogicalGraph) *dataflow.LogicalGraph {
	c := g.Clone()
	for _, op := range c.Operators() {
		if est, ok := p.costs[op.ID]; ok {
			op.Cost = est
		}
	}
	return c
}
