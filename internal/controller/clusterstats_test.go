package controller

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"capsys/internal/clock"
	"capsys/internal/metrics"
	"capsys/internal/telemetry"
)

// TestDistHBSamplerDeltas pins the heartbeat sampler's encoding rules:
// monotone series (counters, meter counts, time accumulators, histogram
// buckets) travel as deltas since the previous tick, gauges as absolutes,
// and empty deltas are omitted.
func TestDistHBSamplerDeltas(t *testing.T) {
	tel := telemetry.New()
	reg := tel.Registry()
	s := newHBSampler(tel)

	reg.Counter("net.frames_sent").Inc(5)
	reg.Gauge("queue.depth").Set(7)
	reg.Time("busy").Add(2 * time.Second)
	tel.Histogram("net.credit_wait_seconds").Observe(0.001)
	tel.Histogram("net.credit_wait_seconds").Observe(0.002)

	st := s.sample()
	if st.Counters["net.frames_sent"] != 5 {
		t.Errorf("first counter delta = %d, want 5", st.Counters["net.frames_sent"])
	}
	if st.Gauges["queue.depth"] != 7 {
		t.Errorf("gauge = %v, want 7", st.Gauges["queue.depth"])
	}
	if st.TimesNS["busy"] != int64(2*time.Second) {
		t.Errorf("time delta = %d, want %d", st.TimesNS["busy"], int64(2*time.Second))
	}
	if h, ok := st.Hists["net.credit_wait_seconds"]; !ok || h.Count != 2 {
		t.Errorf("hist interval = %+v, want count 2", h)
	}

	reg.Counter("net.frames_sent").Inc(3)
	reg.Gauge("queue.depth").Set(4)
	st = s.sample()
	if st.Counters["net.frames_sent"] != 3 {
		t.Errorf("second counter delta = %d, want 3 (delta, not total)", st.Counters["net.frames_sent"])
	}
	if st.Gauges["queue.depth"] != 4 {
		t.Errorf("gauge = %v, want the absolute 4", st.Gauges["queue.depth"])
	}
	if _, ok := st.TimesNS["busy"]; ok {
		t.Error("unchanged time accumulator shipped a zero delta")
	}
	if _, ok := st.Hists["net.credit_wait_seconds"]; ok {
		t.Error("quiet histogram shipped an empty interval")
	}

	// A nil hub samples to nil, and the coordinator must ignore it.
	if st := newHBSampler(nil).sample(); st != nil {
		t.Errorf("nil-hub sample = %+v, want nil", st)
	}
	var agg clusterAgg
	agg.applyStats("w0", nil) // must not panic
}

// TestDistClusterMetricsGolden pins the coordinator's merged Prometheus
// exposition: two workers' heartbeat deltas land under worker-labeled
// families plus cluster rollups, callback gauges are relayed (gaining a
// worker label when the origin omitted one), and absorbed histograms
// export under their own family. Regenerate with UPDATE_GOLDEN=1.
func TestDistClusterMetricsGolden(t *testing.T) {
	tel := telemetry.New()
	agg := clusterAgg{tel: tel}

	// Pin the absorbed histogram's window clock before any absorption so
	// the windowed view deterministically covers the absorbed interval.
	cur := time.Unix(1000, 0)
	tel.Window("net.credit_wait_seconds").SetClock(func() time.Time { return cur })

	h, err := telemetry.NewHistogram(telemetry.DefaultLatencyOptions())
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0.001)
	h.Observe(0.001)
	h.Observe(0.004)

	agg.applyStats("w0", &wireStats{
		Counters: map[string]int64{"net.frames_sent": 40, "net.bytes_sent": 4096},
		TimesNS:  map[string]int64{"exchange.credit_stall_seconds": int64(time.Second)},
		Gauges:   map[string]float64{"trace_dropped": 2},
		FnGauges: []telemetry.GaugeSample{
			{Family: "worker_saturation", Labels: map[string]string{"worker": "w0", "resource": "cpu"}, Value: 0.25},
			{Family: "net_pump_queue_depth", Labels: nil, Value: 3},
		},
		Hists: map[string]telemetry.HistogramSnapshot{"net.credit_wait_seconds": h.Snapshot()},
	})
	agg.applyStats("w1", &wireStats{
		Counters: map[string]int64{"net.frames_sent": 2, "sink[0].records_in": 17},
	})
	// A second heartbeat from w0 must add, not replace.
	agg.applyStats("w0", &wireStats{Counters: map[string]int64{"net.frames_sent": 2}})

	// Two seconds of pinned wall clock pass before the scrape, giving the
	// windowed view a deterministic nonzero span.
	cur = cur.Add(2 * time.Second)

	var buf bytes.Buffer
	if err := tel.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	golden := filepath.Join("testdata", "golden", "cluster_prometheus.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("cluster exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDistClusterTraceMerge checks the merged-timeline invariants: relayed
// events keep their origin provenance (Src, WSeq) while gaining a fresh,
// strictly increasing cluster sequence, and the feed's drop count surfaces
// as a per-worker gauge.
func TestDistClusterTraceMerge(t *testing.T) {
	tel := telemetry.New()
	agg := clusterAgg{tel: tel}

	agg.applyTrace("w1", &wireTrace{Events: []telemetry.Event{
		{Src: "w1", WSeq: 0, Kind: telemetry.EventWorkerAttemptStart, Worker: "w1", Attempt: 1},
		{Src: "w1", WSeq: 3, Kind: telemetry.EventCheckpointStart, Epoch: 1},
	}})
	agg.applyTrace("w0", &wireTrace{
		Events:  []telemetry.Event{{Src: "w0", WSeq: 5, Kind: telemetry.EventCheckpointComplete, Epoch: 1}},
		Dropped: 4,
	})

	evs := tel.Tracer().Events()
	if len(evs) != 3 {
		t.Fatalf("merged %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Errorf("event %d: cluster seq %d, want %d (fresh dense sequence)", i, ev.Seq, i)
		}
	}
	if evs[0].Src != "w1" || evs[0].WSeq != 0 || evs[1].WSeq != 3 {
		t.Errorf("origin provenance lost: %+v %+v", evs[0], evs[1])
	}
	if evs[2].Src != "w0" || evs[2].WSeq != 5 {
		t.Errorf("origin provenance lost: %+v", evs[2])
	}
	if got := tel.Registry().Snapshot()["worker.w0.trace_dropped"]; got != 4 {
		t.Errorf("worker.w0.trace_dropped = %v, want 4", got)
	}
}

// TestDistHealthzStaleWorker drives the liveness decision on an injected
// clock: a worker whose last frame is older than the heartbeat timeout is
// stale for the supervision loop and dead on /healthz (503), all without a
// single real timer.
func TestDistHealthzStaleWorker(t *testing.T) {
	t0 := time.Unix(5000, 0)
	fx := newDistFixture(t, "Q3-inf")
	co := &Coordinator{
		spec: fx.deploy,
		n:    2,
		opts: CoordinatorOptions{HeartbeatTimeout: 5 * time.Second, Telemetry: telemetry.New()},
		clk:  clock.Fixed(t0),
	}
	fresh := &coordConn{addr: "127.0.0.1:101"}
	fresh.alive.Store(true)
	fresh.lastSeen.Store(t0.Add(-time.Second).UnixNano())
	fresh.lastEpoch.Store(3)
	stale := &coordConn{addr: "127.0.0.1:102"}
	stale.alive.Store(true)
	stale.lastSeen.Store(t0.Add(-6 * time.Second).UnixNano())
	co.conns = []*coordConn{fresh, stale}

	if w, ok := co.staleWorker(map[int]bool{0: true, 1: true}); !ok || w != 1 {
		t.Errorf("staleWorker = (%d, %v), want (1, true)", w, ok)
	}
	if w, ok := co.staleWorker(map[int]bool{0: true}); ok {
		t.Errorf("staleWorker over fresh-only set = (%d, %v), want none", w, ok)
	}

	srv := httptest.NewServer(co.ClusterHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz status = %d, want 503 (one worker stale)", resp.StatusCode)
	}
	var rep HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Healthy || rep.Expected != 2 || rep.Joined != 2 || len(rep.Workers) != 2 {
		t.Errorf("health report = %+v, want unhealthy 2/2 with 2 workers", rep)
	}
	if !rep.Workers[0].Alive || rep.Workers[0].ID != "w0" || rep.Workers[0].Epoch != 3 {
		t.Errorf("worker 0 health = %+v, want alive w0 at epoch 3", rep.Workers[0])
	}
	if rep.Workers[1].Alive || rep.Workers[1].LastHeartbeatMS != 6000 {
		t.Errorf("worker 1 health = %+v, want dead with 6000ms heartbeat age", rep.Workers[1])
	}

	// A declared-dead worker stays dead even with a fresh lastSeen (its
	// connection was closed by recovery; late TCP data must not resurrect it).
	stale.lastSeen.Store(t0.UnixNano())
	stale.alive.Store(false)
	if co.Health().Healthy {
		t.Error("declared-dead worker counted healthy on a fresh lastSeen")
	}

	// /workers serves the roster regardless of health.
	resp2, err := http.Get(srv.URL + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var roster []WorkerHealth
	if err := json.NewDecoder(resp2.Body).Decode(&roster); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK || len(roster) != 2 || roster[1].Addr != "127.0.0.1:102" {
		t.Errorf("/workers = %d %+v, want 200 with both addresses", resp2.StatusCode, roster)
	}
}

// TestDistAggregationLive runs the full 3-worker in-process cluster with
// telemetry on every side and asserts the coordinator's merged view: live
// per-worker net.* series with cluster rollups, relayed saturation gauges,
// absorbed latency histograms, a healthy /healthz, and a merged trace
// timeline with events from every worker process and the coordinator
// itself. It runs under -race in `make verify` — the heartbeat piggyback
// path must be race-clean.
func TestDistAggregationLive(t *testing.T) {
	fx := newDistFixture(t, "Q3-inf")
	coTel := telemetry.New()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	co, err := NewCoordinator("127.0.0.1:0", fx.deploy, distWorkers, CoordinatorOptions{
		HeartbeatTimeout: 5 * time.Second,
		Telemetry:        coTel,
	})
	if err != nil {
		t.Fatal(err)
	}
	dc := &distCluster{co: co}
	for w := 0; w < distWorkers; w++ {
		wctx, cancel := context.WithCancel(ctx)
		dc.cancel = append(dc.cancel, cancel)
		errc := make(chan error, 1)
		dc.errs = append(dc.errs, errc)
		wtel := telemetry.New()
		go func(wtel *telemetry.Telemetry) {
			errc <- JoinCluster(wctx, co.Addr(), NexmarkBuilderWith(wtel), JoinOptions{
				HeartbeatEvery: 25 * time.Millisecond,
				Telemetry:      wtel,
			})
		}(wtel)
	}
	if err := co.WaitJoined(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		co.Shutdown()
		for _, cancel := range dc.cancel {
			cancel()
		}
		for _, errc := range dc.errs {
			<-errc
		}
	})

	res, err := co.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.SinkRecords == 0 || res.Recoveries != 0 {
		t.Fatalf("unexpected run outcome: sink=%d recoveries=%d", res.SinkRecords, res.Recoveries)
	}

	// Workers keep heartbeating until Shutdown, so the last deltas land
	// within one more interval; poll briefly rather than sleeping blind.
	deadline := time.Now().Add(2 * time.Second)
	var snap map[string]float64
	for {
		snap = coTel.Registry().Snapshot()
		if snap["cluster.net.frames_sent"] > 0 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	for w := 0; w < distWorkers; w++ {
		name := metrics.WorkerMetricName(fx.deploy.Workers[w].ID, "net.frames_sent")
		if snap[name] <= 0 {
			t.Errorf("%s = %v, want > 0 (every worker uses the wire)", name, snap[name])
		}
	}
	if snap["cluster.net.frames_sent"] <= 0 {
		t.Errorf("cluster.net.frames_sent = %v, want > 0", snap["cluster.net.frames_sent"])
	}
	var totalWorker float64
	for name, v := range snap {
		if wm, ok := metrics.ParseWorkerMetricName(name); ok && wm.Metric == "net.frames_sent" {
			totalWorker += v
		}
	}
	if totalWorker != snap["cluster.net.frames_sent"] {
		t.Errorf("cluster rollup %v != sum of worker series %v", snap["cluster.net.frames_sent"], totalWorker)
	}

	// Relayed callback gauges: per-task saturation from the workers'
	// engine attempts, worker-labeled.
	sawSaturation := false
	for _, g := range coTel.SampleGaugeFuncs() {
		if g.Family == "worker_saturation" && g.Labels["worker"] != "" {
			sawSaturation = true
			break
		}
	}
	if !sawSaturation {
		t.Error("no worker_saturation callback gauge relayed to the coordinator")
	}

	// Absorbed histograms: the workers' per-operator latency observations
	// must be present in the merged hub.
	var histCount int64
	for _, name := range coTel.HistogramNames() {
		//capslint:allow metricnames iterating the merged hub's own registered names
		histCount += coTel.Histogram(name).Count()
	}
	if histCount == 0 {
		t.Error("no histogram observations merged into the coordinator hub")
	}

	// Merged timeline: every worker process and the coordinator appear,
	// with a dense cluster sequence and a completed checkpoint epoch.
	evs := coTel.Tracer().Events()
	srcs := map[string]bool{}
	ckptDone := false
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d: cluster seq %d, want %d", i, ev.Seq, i)
		}
		srcs[ev.Src] = true
		if ev.Kind == telemetry.EventCheckpointComplete && ev.Src == "coord" && ev.Epoch >= 1 {
			ckptDone = true
		}
	}
	for w := 0; w < distWorkers; w++ {
		src := fx.deploy.Workers[w].ID
		if !srcs[src] {
			t.Errorf("merged timeline has no events from %s (sources seen: %v)", src, srcs)
		}
	}
	if !srcs["coord"] {
		t.Errorf("merged timeline has no coordinator events (sources seen: %v)", srcs)
	}
	if !ckptDone {
		t.Error("merged timeline has no coordinator checkpoint.complete event with epoch >= 1")
	}

	// The cluster is still fully joined and heartbeating: /healthz is 200.
	srv := httptest.NewServer(co.ClusterHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz after a clean run = %d, want 200", resp.StatusCode)
	}
}
