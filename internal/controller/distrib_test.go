package controller

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
)

// distFixture holds everything shared between the in-memory reference run
// and the distributed cluster run of one query.
type distFixture struct {
	spec   nexmark.QuerySpec
	phys   *dataflow.PhysicalGraph
	espec  engine.ClusterSpec
	plan   *dataflow.Plan
	deploy DeploySpec
}

const (
	distSeed     = 11
	distRecords  = 600
	distSnapshot = 100
	distWorkers  = 3
)

func newDistFixture(t *testing.T, query string) *distFixture {
	t.Helper()
	spec, err := nexmark.ByName(query)
	if err != nil {
		t.Fatal(err)
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	// Slots sized so two survivors can host the whole graph after a death.
	slots := phys.NumTasks()/(distWorkers-1) + 1
	c, err := cluster.Homogeneous(distWorkers, slots, 8, 500e6, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	plan := dataflow.NewPlanSized(phys.NumTasks())
	for i, task := range phys.Tasks() {
		plan.Assign(task, i%distWorkers)
	}
	espec := EngineCluster(c)
	assign, err := AssignmentsOf(phys, plan)
	if err != nil {
		t.Fatal(err)
	}
	return &distFixture{
		spec:  spec,
		phys:  phys,
		espec: espec,
		plan:  plan,
		deploy: DeploySpec{
			Query:            query,
			Seed:             distSeed,
			RecordsPerSource: distRecords,
			SnapshotInterval: distSnapshot,
			Workers:          espec.Workers,
			Assign:           assign,
		},
	}
}

// referenceResult runs the same job in-process on the batched transport —
// the golden the distributed cluster must reproduce.
func (f *distFixture) referenceResult(t *testing.T) *engine.JobResult {
	t.Helper()
	binding, err := nexmark.BindEngine(f.spec, distSeed)
	if err != nil {
		t.Fatal(err)
	}
	job, err := engine.NewJob(f.spec.Graph, f.plan, f.espec, binding.Factories, engine.JobOptions{
		RecordsPerSource: distRecords,
		SnapshotInterval: distSnapshot,
		Transport:        engine.TransportBatched,
		Stateful:         binding.Stateful,
		PerRecordCPU:     binding.PerRecordCPU,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := job.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// distCluster launches a coordinator plus distWorkers in-process joiners
// (each its own control connection, data plane over loopback TCP) and
// returns the coordinator and a per-worker cancel.
type distCluster struct {
	co     *Coordinator
	cancel []context.CancelFunc
	errs   []chan error
}

func startDistCluster(t *testing.T, ctx context.Context, fx *distFixture, opts CoordinatorOptions) *distCluster {
	t.Helper()
	co, err := NewCoordinator("127.0.0.1:0", fx.deploy, distWorkers, opts)
	if err != nil {
		t.Fatal(err)
	}
	dc := &distCluster{co: co}
	for w := 0; w < distWorkers; w++ {
		wctx, cancel := context.WithCancel(ctx)
		dc.cancel = append(dc.cancel, cancel)
		errc := make(chan error, 1)
		dc.errs = append(dc.errs, errc)
		go func() {
			errc <- JoinCluster(wctx, co.Addr(), NexmarkBuilder(), JoinOptions{
				HeartbeatEvery: 50 * time.Millisecond,
			})
		}()
	}
	if err := co.WaitJoined(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		co.Shutdown()
		for _, cancel := range dc.cancel {
			cancel()
		}
		for _, errc := range dc.errs {
			<-errc
		}
	})
	return dc
}

// TestDistClusterMatchesInMemory runs a 3-process-style cluster (separate
// control connections and TCP data plane, all in one test process) and
// requires the sink outcome to be byte-identical to the in-memory batched
// reference — the cross-process leg of the equivalence battery.
func TestDistClusterMatchesInMemory(t *testing.T) {
	for _, query := range []string{"Q3-inf", "Q2-join"} {
		t.Run(query, func(t *testing.T) {
			fx := newDistFixture(t, query)
			want := fx.referenceResult(t)

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			dc := startDistCluster(t, ctx, fx, CoordinatorOptions{
				HeartbeatTimeout: 5 * time.Second,
			})
			res, err := dc.co.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.SinkRecords != want.SinkRecords {
				t.Errorf("sink records = %d, in-memory reference = %d", res.SinkRecords, want.SinkRecords)
			}
			if res.SourceRecords != want.SourceRecords {
				t.Errorf("source records = %d, in-memory reference = %d", res.SourceRecords, want.SourceRecords)
			}
			if res.LostRecords != 0 {
				t.Errorf("lost %d records on a clean run", res.LostRecords)
			}
			if res.Recoveries != 0 || res.Failed {
				t.Errorf("clean run reported recoveries=%d failed=%v", res.Recoveries, res.Failed)
			}
			if res.SnapshotsTaken != want.SnapshotsTaken {
				t.Errorf("snapshots taken = %d, in-memory reference = %d", res.SnapshotsTaken, want.SnapshotsTaken)
			}
			// Per-task counters must agree task by task, not just in sum.
			for id, ts := range want.Tasks {
				got, ok := res.Tasks[id]
				if !ok {
					t.Errorf("task %v missing from distributed result", id)
					continue
				}
				if got.RecordsIn != ts.RecordsIn || got.RecordsOut != ts.RecordsOut {
					t.Errorf("task %v: records in/out = %d/%d, in-memory = %d/%d",
						id, got.RecordsIn, got.RecordsOut, ts.RecordsIn, ts.RecordsOut)
				}
			}
			snap := res.Metrics.Snapshot()
			if snap["net.data_batches"] <= 0 {
				t.Errorf("net.data_batches = %v, want > 0 (cluster must use the wire)", snap["net.data_batches"])
			}
			if snap["net.credit_frames"] <= 0 {
				t.Errorf("net.credit_frames = %v, want > 0 (wire flow control must engage)", snap["net.credit_frames"])
			}
		})
	}
}

// TestDistClusterKillRecovery kills one worker's control loop after the
// first complete checkpoint; the coordinator must abort the survivors,
// re-place the dead worker's tasks, restart from the checkpoint, and still
// land on the in-memory sink outcome.
func TestDistClusterKillRecovery(t *testing.T) {
	fx := newDistFixture(t, "Q3-inf")
	want := fx.referenceResult(t)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	checkpointed := make(chan int64, 16)
	var logMu sync.Mutex
	var logs []string
	opts := CoordinatorOptions{
		// Short timeout: the killed worker's connection closes promptly via
		// its context watcher, but keep the heartbeat net tight anyway.
		HeartbeatTimeout: 2 * time.Second,
		StopTimeout:      30 * time.Second,
		Replan: func(dead []int, attempt int) ([]TaskAssignment, error) {
			deadSet := make(map[int]bool, len(dead))
			for _, w := range dead {
				deadSet[w] = true
			}
			var survivors []int
			for w := 0; w < distWorkers; w++ {
				if !deadSet[w] {
					survivors = append(survivors, w)
				}
			}
			if len(survivors) == 0 {
				return nil, fmt.Errorf("no survivors")
			}
			next := make([]TaskAssignment, len(fx.deploy.Assign))
			copy(next, fx.deploy.Assign)
			moved := 0
			for i := range next {
				if deadSet[next[i].Worker] {
					next[i].Worker = survivors[moved%len(survivors)]
					moved++
				}
			}
			return next, nil
		},
		Logf: func(format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			logMu.Lock()
			logs = append(logs, line)
			logMu.Unlock()
			var epoch int64
			if n, _ := fmt.Sscanf(line, "checkpoint: epoch %d complete", &epoch); n == 1 {
				select {
				case checkpointed <- epoch:
				default:
				}
			}
		},
	}
	dc := startDistCluster(t, ctx, fx, opts)

	// Kill one joiner once the first epoch is durably checkpointed, so the
	// restart provably resumes from a snapshot rather than from scratch.
	// Worker indices are handed out in TCP join order, so goroutine 1 may
	// have been welcomed under any index — assertions below are
	// victim-agnostic.
	go func() {
		select {
		case <-checkpointed:
			dc.cancel[1]()
		case <-ctx.Done():
		}
	}()

	res, err := dc.co.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 {
		logMu.Lock()
		t.Fatalf("recoveries = %d, want 1; coordinator log:\n  %s",
			res.Recoveries, strings.Join(logs, "\n  "))
	}
	if res.RestoredEpoch < 1 {
		t.Errorf("restored epoch = %d, want >= 1 (restart must come from a checkpoint)", res.RestoredEpoch)
	}
	if res.SinkRecords != want.SinkRecords {
		t.Errorf("sink records after recovery = %d, in-memory reference = %d", res.SinkRecords, want.SinkRecords)
	}
	if res.SourceRecords != want.SourceRecords {
		t.Errorf("source records after recovery = %d, in-memory reference = %d", res.SourceRecords, want.SourceRecords)
	}
	if res.LostRecords != 0 {
		t.Errorf("recovered run lost %d records", res.LostRecords)
	}
	if res.Failed {
		t.Error("recovered run reported Failed")
	}
	if len(res.Faults) != 1 || !res.Faults[0].Recovered ||
		res.Faults[0].Worker < 0 || res.Faults[0].Worker >= distWorkers {
		t.Errorf("faults = %+v, want one recovered kill of a cluster worker", res.Faults)
	}
	if res.Downtime <= 0 {
		t.Error("recovery must account downtime")
	}
	snap := res.Metrics.Snapshot()
	if snap["job.recoveries"] != 1 {
		t.Errorf("job.recoveries = %v, want 1", snap["job.recoveries"])
	}
	// The dead worker's tasks must have moved onto survivors and produced.
	if res.SinkRecords == 0 {
		t.Error("no sink records after recovery")
	}
}

// TestDistValidation covers the coordinator's guard rails without any
// network traffic beyond a bound listener.
func TestDistValidation(t *testing.T) {
	fx := newDistFixture(t, "Q3-inf")
	if _, err := NewCoordinator("127.0.0.1:0", fx.deploy, 0, CoordinatorOptions{}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := NewCoordinator("127.0.0.1:0", fx.deploy, distWorkers+1, CoordinatorOptions{}); err == nil {
		t.Error("more worker processes than spec workers accepted")
	}
	empty := fx.deploy
	empty.Assign = nil
	if _, err := NewCoordinator("127.0.0.1:0", empty, distWorkers, CoordinatorOptions{}); err == nil {
		t.Error("empty assignment accepted")
	}
	co, err := NewCoordinator("127.0.0.1:0", fx.deploy, distWorkers, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown()
	if _, err := co.Run(context.Background()); err == nil {
		t.Error("Run before WaitJoined accepted")
	}

	alive := map[int]bool{0: true, 1: true}
	prev := []TaskAssignment{
		{Task: engine.WireTaskID{Op: "a", Index: 0}, Worker: 2},
		{Task: engine.WireTaskID{Op: "b", Index: 0}, Worker: 0},
	}
	cases := []struct {
		name string
		next []TaskAssignment
	}{
		{"dropped task", prev[:1]},
		{"invented task", []TaskAssignment{prev[0], {Task: engine.WireTaskID{Op: "c", Index: 0}, Worker: 0}}},
		{"duplicate task", []TaskAssignment{prev[0], prev[0]}},
		{"dead worker", []TaskAssignment{{Task: prev[0].Task, Worker: 2}, {Task: prev[1].Task, Worker: 0}}},
	}
	for _, tc := range cases {
		if err := validateAssign(tc.next, prev, alive); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	good := []TaskAssignment{
		{Task: prev[0].Task, Worker: 0},
		{Task: prev[1].Task, Worker: 1},
	}
	if err := validateAssign(good, prev, alive); err != nil {
		t.Errorf("valid re-placement rejected: %v", err)
	}
}
