package controller

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
)

// distFixture holds everything shared between the in-memory reference run
// and the distributed cluster run of one query.
type distFixture struct {
	spec   nexmark.QuerySpec
	phys   *dataflow.PhysicalGraph
	espec  engine.ClusterSpec
	plan   *dataflow.Plan
	deploy DeploySpec
}

const (
	distSeed     = 11
	distRecords  = 600
	distSnapshot = 100
	distWorkers  = 3
)

func newDistFixture(t *testing.T, query string) *distFixture {
	t.Helper()
	spec, err := nexmark.ByName(query)
	if err != nil {
		t.Fatal(err)
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	// Slots sized so two survivors can host the whole graph after a death.
	slots := phys.NumTasks()/(distWorkers-1) + 1
	c, err := cluster.Homogeneous(distWorkers, slots, 8, 500e6, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	plan := dataflow.NewPlanSized(phys.NumTasks())
	for i, task := range phys.Tasks() {
		plan.Assign(task, i%distWorkers)
	}
	espec := EngineCluster(c)
	assign, err := AssignmentsOf(phys, plan)
	if err != nil {
		t.Fatal(err)
	}
	return &distFixture{
		spec:  spec,
		phys:  phys,
		espec: espec,
		plan:  plan,
		deploy: DeploySpec{
			Query:            query,
			Seed:             distSeed,
			RecordsPerSource: distRecords,
			SnapshotInterval: distSnapshot,
			Workers:          espec.Workers,
			Assign:           assign,
		},
	}
}

// referenceResult runs the same job in-process on the batched transport —
// the golden the distributed cluster must reproduce.
func (f *distFixture) referenceResult(t *testing.T) *engine.JobResult {
	t.Helper()
	binding, err := nexmark.BindEngine(f.spec, distSeed)
	if err != nil {
		t.Fatal(err)
	}
	job, err := engine.NewJob(f.spec.Graph, f.plan, f.espec, binding.Factories, engine.JobOptions{
		RecordsPerSource: distRecords,
		SnapshotInterval: distSnapshot,
		Transport:        engine.TransportBatched,
		Stateful:         binding.Stateful,
		PerRecordCPU:     binding.PerRecordCPU,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := job.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// distCluster launches a coordinator plus distWorkers in-process joiners
// (each its own control connection, data plane over loopback TCP) and
// returns the coordinator and a per-worker cancel.
type distCluster struct {
	co     *Coordinator
	cancel []context.CancelFunc
	errs   []chan error
}

func startDistCluster(t *testing.T, ctx context.Context, fx *distFixture, opts CoordinatorOptions) *distCluster {
	t.Helper()
	co, err := NewCoordinator("127.0.0.1:0", fx.deploy, distWorkers, opts)
	if err != nil {
		t.Fatal(err)
	}
	dc := &distCluster{co: co}
	for w := 0; w < distWorkers; w++ {
		wctx, cancel := context.WithCancel(ctx)
		dc.cancel = append(dc.cancel, cancel)
		errc := make(chan error, 1)
		dc.errs = append(dc.errs, errc)
		go func() {
			errc <- JoinCluster(wctx, co.Addr(), NexmarkBuilder(), JoinOptions{
				HeartbeatEvery: 50 * time.Millisecond,
			})
		}()
	}
	if err := co.WaitJoined(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		co.Shutdown()
		for _, cancel := range dc.cancel {
			cancel()
		}
		for _, errc := range dc.errs {
			<-errc
		}
	})
	return dc
}

// TestDistClusterMatchesInMemory runs a 3-process-style cluster (separate
// control connections and TCP data plane, all in one test process) and
// requires the sink outcome to be byte-identical to the in-memory batched
// reference — the cross-process leg of the equivalence battery.
func TestDistClusterMatchesInMemory(t *testing.T) {
	for _, query := range []string{"Q3-inf", "Q2-join"} {
		t.Run(query, func(t *testing.T) {
			fx := newDistFixture(t, query)
			want := fx.referenceResult(t)

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			dc := startDistCluster(t, ctx, fx, CoordinatorOptions{
				HeartbeatTimeout: 5 * time.Second,
			})
			res, err := dc.co.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.SinkRecords != want.SinkRecords {
				t.Errorf("sink records = %d, in-memory reference = %d", res.SinkRecords, want.SinkRecords)
			}
			if res.SourceRecords != want.SourceRecords {
				t.Errorf("source records = %d, in-memory reference = %d", res.SourceRecords, want.SourceRecords)
			}
			if res.LostRecords != 0 {
				t.Errorf("lost %d records on a clean run", res.LostRecords)
			}
			if res.Recoveries != 0 || res.Failed {
				t.Errorf("clean run reported recoveries=%d failed=%v", res.Recoveries, res.Failed)
			}
			if res.SnapshotsTaken != want.SnapshotsTaken {
				t.Errorf("snapshots taken = %d, in-memory reference = %d", res.SnapshotsTaken, want.SnapshotsTaken)
			}
			// Per-task counters must agree task by task, not just in sum.
			for id, ts := range want.Tasks {
				got, ok := res.Tasks[id]
				if !ok {
					t.Errorf("task %v missing from distributed result", id)
					continue
				}
				if got.RecordsIn != ts.RecordsIn || got.RecordsOut != ts.RecordsOut {
					t.Errorf("task %v: records in/out = %d/%d, in-memory = %d/%d",
						id, got.RecordsIn, got.RecordsOut, ts.RecordsIn, ts.RecordsOut)
				}
			}
			snap := res.Metrics.Snapshot()
			if snap["net.data_batches"] <= 0 {
				t.Errorf("net.data_batches = %v, want > 0 (cluster must use the wire)", snap["net.data_batches"])
			}
			if snap["net.credit_frames"] <= 0 {
				t.Errorf("net.credit_frames = %v, want > 0 (wire flow control must engage)", snap["net.credit_frames"])
			}
		})
	}
}

// TestDistClusterKillRecovery kills one worker's control loop after the
// first complete checkpoint; the coordinator must abort the survivors,
// re-place the dead worker's tasks, restart from the checkpoint, and still
// land on the in-memory sink outcome.
func TestDistClusterKillRecovery(t *testing.T) {
	fx := newDistFixture(t, "Q3-inf")
	want := fx.referenceResult(t)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	checkpointed := make(chan int64, 16)
	var logMu sync.Mutex
	var logs []string
	opts := CoordinatorOptions{
		// Short timeout: the killed worker's connection closes promptly via
		// its context watcher, but keep the heartbeat net tight anyway.
		HeartbeatTimeout: 2 * time.Second,
		StopTimeout:      30 * time.Second,
		Replan: func(dead []int, attempt int) ([]TaskAssignment, error) {
			deadSet := make(map[int]bool, len(dead))
			for _, w := range dead {
				deadSet[w] = true
			}
			var survivors []int
			for w := 0; w < distWorkers; w++ {
				if !deadSet[w] {
					survivors = append(survivors, w)
				}
			}
			if len(survivors) == 0 {
				return nil, fmt.Errorf("no survivors")
			}
			next := make([]TaskAssignment, len(fx.deploy.Assign))
			copy(next, fx.deploy.Assign)
			moved := 0
			for i := range next {
				if deadSet[next[i].Worker] {
					next[i].Worker = survivors[moved%len(survivors)]
					moved++
				}
			}
			return next, nil
		},
		Logf: func(format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			logMu.Lock()
			logs = append(logs, line)
			logMu.Unlock()
			var epoch int64
			if n, _ := fmt.Sscanf(line, "checkpoint: epoch %d complete", &epoch); n == 1 {
				select {
				case checkpointed <- epoch:
				default:
				}
			}
		},
	}
	dc := startDistCluster(t, ctx, fx, opts)

	// Kill one joiner once the first epoch is durably checkpointed, so the
	// restart provably resumes from a snapshot rather than from scratch.
	// Worker indices are handed out in TCP join order, so goroutine 1 may
	// have been welcomed under any index — assertions below are
	// victim-agnostic.
	go func() {
		select {
		case <-checkpointed:
			dc.cancel[1]()
		case <-ctx.Done():
		}
	}()

	res, err := dc.co.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 {
		logMu.Lock()
		t.Fatalf("recoveries = %d, want 1; coordinator log:\n  %s",
			res.Recoveries, strings.Join(logs, "\n  "))
	}
	if res.RestoredEpoch < 1 {
		t.Errorf("restored epoch = %d, want >= 1 (restart must come from a checkpoint)", res.RestoredEpoch)
	}
	if res.SinkRecords != want.SinkRecords {
		t.Errorf("sink records after recovery = %d, in-memory reference = %d", res.SinkRecords, want.SinkRecords)
	}
	if res.SourceRecords != want.SourceRecords {
		t.Errorf("source records after recovery = %d, in-memory reference = %d", res.SourceRecords, want.SourceRecords)
	}
	if res.LostRecords != 0 {
		t.Errorf("recovered run lost %d records", res.LostRecords)
	}
	if res.Failed {
		t.Error("recovered run reported Failed")
	}
	if len(res.Faults) != 1 || !res.Faults[0].Recovered ||
		res.Faults[0].Worker < 0 || res.Faults[0].Worker >= distWorkers {
		t.Errorf("faults = %+v, want one recovered kill of a cluster worker", res.Faults)
	}
	if res.Downtime <= 0 {
		t.Error("recovery must account downtime")
	}
	snap := res.Metrics.Snapshot()
	if snap["job.recoveries"] != 1 {
		t.Errorf("job.recoveries = %v, want 1", snap["job.recoveries"])
	}
	// The dead worker's tasks must have moved onto survivors and produced.
	if res.SinkRecords == 0 {
		t.Error("no sink records after recovery")
	}
}

// fakeDistWorker speaks the control-plane frame protocol by hand, letting
// tests script exact worker behavior the engine would never produce on its
// own (a PEERDOWN against a live peer, scripted abort acknowledgements).
type fakeDistWorker struct {
	t  *testing.T
	c  net.Conn
	w  *connWriter
	id int
}

func joinFakeWorker(t *testing.T, addr string) *fakeDistWorker {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fw := &fakeDistWorker{t: t, c: c, w: &connWriter{c: c}}
	if err := fw.w.send(engine.FrameHello, wireJoin{Proto: distProtoVersion}); err != nil {
		t.Fatal(err)
	}
	f := fw.read()
	if f.Type != engine.FrameWelcome {
		t.Fatalf("expected WELCOME, got frame type %d", f.Type)
	}
	var wel wireWelcome
	if err := engine.DecodePayload(f.Payload, &wel); err != nil {
		t.Fatal(err)
	}
	fw.id = wel.Worker
	return fw
}

func (f *fakeDistWorker) read() engine.Frame {
	f.t.Helper()
	f.c.SetReadDeadline(time.Now().Add(10 * time.Second))
	fr, err := engine.ReadFrame(f.c)
	if err != nil {
		f.t.Fatalf("fake worker %d read: %v", f.id, err)
	}
	return fr
}

// expect reads one frame and requires the given type.
func (f *fakeDistWorker) expect(typ byte) engine.Frame {
	f.t.Helper()
	fr := f.read()
	if fr.Type != typ {
		f.t.Fatalf("fake worker %d: expected frame type %d, got %d", f.id, typ, fr.Type)
	}
	return fr
}

// expectDeploy reads a DEPLOY, checks its attempt number, and answers READY.
func (f *fakeDistWorker) expectDeployReady(attempt int) {
	f.t.Helper()
	fr := f.expect(engine.FrameDeploy)
	var spec DeploySpec
	if err := engine.DecodePayload(fr.Payload, &spec); err != nil {
		f.t.Fatal(err)
	}
	if spec.Attempt != attempt {
		f.t.Fatalf("fake worker %d: DEPLOY attempt = %d, want %d", f.id, spec.Attempt, attempt)
	}
	if err := f.w.send(engine.FrameReady, wireReady{Attempt: attempt, Addr: fmt.Sprintf("127.0.0.1:%d", 40000+f.id)}); err != nil {
		f.t.Fatal(err)
	}
}

// TestDistPeerDownRestartsAttempt is the data-plane failure-detection
// regression: a worker reports a peer unreachable while that peer is still
// control-plane live (heartbeating). The coordinator must act — abort the
// attempt and redeploy every worker from the last complete epoch — rather
// than log an advisory line and leave the job hung forever.
func TestDistPeerDownRestartsAttempt(t *testing.T) {
	fx := newDistFixture(t, "Q3-inf")
	co, err := NewCoordinator("127.0.0.1:0", fx.deploy, 2, CoordinatorOptions{
		HeartbeatTimeout: 30 * time.Second,
		StopTimeout:      10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	joined := make(chan error, 1)
	go func() { joined <- co.WaitJoined(ctx) }()
	fw0 := joinFakeWorker(t, co.Addr())
	fw1 := joinFakeWorker(t, co.Addr())
	if err := <-joined; err != nil {
		t.Fatal(err)
	}
	fakes := []*fakeDistWorker{fw0, fw1}

	type runOut struct {
		res *engine.JobResult
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := co.Run(ctx)
		done <- runOut{res, err}
	}()

	for _, fw := range fakes {
		fw.expectDeployReady(1)
	}
	for _, fw := range fakes {
		fw.expect(engine.FrameStart)
	}
	// Data-plane-only failure: fw0 cannot reach fw1, but fw1's control
	// connection is perfectly healthy.
	if err := fw0.w.send(engine.FramePeerDown, wirePeer{Attempt: 1, Peer: fw1.id}); err != nil {
		t.Fatal(err)
	}
	// The coordinator must abort BOTH workers and collect their progress.
	for _, fw := range fakes {
		fw.expect(engine.FrameAbort)
		if err := fw.w.send(engine.FrameStopped, wireReport{Report: &engine.WorkerReport{Worker: fw.id, Attempt: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	// ... then redeploy attempt 2 to every worker — nobody was declared dead.
	for _, fw := range fakes {
		fw.expectDeployReady(2)
	}
	for _, fw := range fakes {
		fw.expect(engine.FrameStart)
	}
	for _, fw := range fakes {
		if err := fw.w.send(engine.FrameDone, wireReport{Report: &engine.WorkerReport{Worker: fw.id, Attempt: 2, Completed: true}}); err != nil {
			t.Fatal(err)
		}
	}
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", out.res.Recoveries)
	}
	if out.res.Downtime <= 0 {
		t.Error("data-plane restart must account downtime")
	}
	if len(out.res.Faults) != 0 {
		t.Errorf("faults = %+v, want none (no worker died)", out.res.Faults)
	}
}

// TestDistPeerDownEscalatesAfterBudget: once the data-plane restart budget
// is exhausted, a PEERDOWN against a still-live peer escalates to the
// ordinary dead-worker recovery — the accused peer is dropped and its tasks
// re-placed — instead of restarting forever.
func TestDistPeerDownEscalatesAfterBudget(t *testing.T) {
	fx := newDistFixture(t, "Q3-inf")
	var replanMu sync.Mutex
	var replanDead []int
	co, err := NewCoordinator("127.0.0.1:0", fx.deploy, 2, CoordinatorOptions{
		HeartbeatTimeout: 30 * time.Second,
		StopTimeout:      10 * time.Second,
		Replan: func(dead []int, attempt int) ([]TaskAssignment, error) {
			replanMu.Lock()
			replanDead = append([]int(nil), dead...)
			replanMu.Unlock()
			survivor := 1 - dead[0] // two-process cluster
			next := make([]TaskAssignment, len(fx.deploy.Assign))
			copy(next, fx.deploy.Assign)
			for i := range next {
				next[i].Worker = survivor
			}
			return next, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown()
	co.dpRestarts = maxDataPlaneRestarts // budget already spent

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	joined := make(chan error, 1)
	go func() { joined <- co.WaitJoined(ctx) }()
	fw0 := joinFakeWorker(t, co.Addr())
	fw1 := joinFakeWorker(t, co.Addr())
	if err := <-joined; err != nil {
		t.Fatal(err)
	}

	type runOut struct {
		res *engine.JobResult
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		res, err := co.Run(ctx)
		done <- runOut{res, err}
	}()

	for _, fw := range []*fakeDistWorker{fw0, fw1} {
		fw.expectDeployReady(1)
	}
	for _, fw := range []*fakeDistWorker{fw0, fw1} {
		fw.expect(engine.FrameStart)
	}
	if err := fw0.w.send(engine.FramePeerDown, wirePeer{Attempt: 1, Peer: fw1.id}); err != nil {
		t.Fatal(err)
	}
	// Escalation: fw1 is declared dead (conn closed, no abort for it); the
	// survivor is aborted and redeployed with fw1's tasks re-placed.
	fw0.expect(engine.FrameAbort)
	if err := fw0.w.send(engine.FrameStopped, wireReport{Report: &engine.WorkerReport{Worker: fw0.id, Attempt: 1}}); err != nil {
		t.Fatal(err)
	}
	fw0.expectDeployReady(2)
	fw0.expect(engine.FrameStart)
	if err := fw0.w.send(engine.FrameDone, wireReport{Report: &engine.WorkerReport{Worker: fw0.id, Attempt: 2, Completed: true}}); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	replanMu.Lock()
	defer replanMu.Unlock()
	if len(replanDead) != 1 || replanDead[0] != fw1.id {
		t.Errorf("Replan dead = %v, want [%d]", replanDead, fw1.id)
	}
	if len(out.res.Faults) != 1 || out.res.Faults[0].Worker != fw1.id {
		t.Errorf("faults = %+v, want one kill of worker %d", out.res.Faults, fw1.id)
	}
}

// TestConnWriterClassifiesEncodeErrors pins the error taxonomy recovery
// depends on: a local encode failure (oversized or unencodable body) must
// be distinguishable from a connection error, or the coordinator would
// "recover" against a healthy worker — and, since the oversized data
// persists, kill a worker per retry until the cluster is gone.
func TestConnWriterClassifiesEncodeErrors(t *testing.T) {
	srv, cli := net.Pipe()
	defer srv.Close()
	go io.Copy(io.Discard, srv)
	w := &connWriter{c: cli}
	huge := struct{ B []byte }{B: make([]byte, engine.MaxFramePayload+1)}
	if err := w.send(engine.FrameDeploy, huge); !errors.Is(err, errEncodePayload) {
		t.Fatalf("oversized payload error = %v, want errEncodePayload", err)
	}
	cli.Close()
	if err := w.send(engine.FrameHeartbeat, nil); err == nil || errors.Is(err, errEncodePayload) {
		t.Errorf("connection error misclassified as encode error: %v", err)
	}
}

// TestDistValidation covers the coordinator's guard rails without any
// network traffic beyond a bound listener.
// TestDistClusterRescaleLive schedules a live rescale of the stateful window
// operator on a running 3-process-style cluster: the coordinator drains the
// cluster to a complete epoch, repartitions the operator's key-groups in its
// snapshot store, redeploys every worker on the rescaled topology, and the
// job finishes with the in-memory reference's sink outcome — nothing lost,
// no full replay, state actually moved.
func TestDistClusterRescaleLive(t *testing.T) {
	for _, to := range []int{10, 5} {
		t.Run(fmt.Sprintf("slide-win 8→%d", to), func(t *testing.T) {
			fx := newDistFixture(t, "Q1-sliding")
			want := fx.referenceResult(t)

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			dc := startDistCluster(t, ctx, fx, CoordinatorOptions{
				HeartbeatTimeout: 5 * time.Second,
				Rescales:         []engine.RescalePlan{{Op: "slide-win", Parallelism: to, AtEpoch: 2}},
			})
			res, err := dc.co.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if res.Rescales != 1 {
				t.Fatalf("Rescales = %d, want 1", res.Rescales)
			}
			if res.Failed || res.LostRecords != 0 {
				t.Fatalf("rescale lost records: failed=%v lost=%d", res.Failed, res.LostRecords)
			}
			if res.Recoveries != 0 {
				t.Errorf("clean rescale reported %d recoveries", res.Recoveries)
			}
			if res.SinkRecords != want.SinkRecords || res.SourceRecords != want.SourceRecords {
				t.Errorf("totals diverge from in-memory reference: sink %d/%d source %d/%d",
					res.SinkRecords, want.SinkRecords, res.SourceRecords, want.SourceRecords)
			}
			seen := 0
			for id := range res.Tasks {
				if id.Op == "slide-win" {
					seen++
				}
			}
			if seen != to {
				t.Errorf("result has %d slide-win tasks, want %d", seen, to)
			}
			if res.RestoredEpoch < 2 {
				t.Errorf("RestoredEpoch = %d, want >= 2 (resume must come from the drain epoch)", res.RestoredEpoch)
			}
			if res.RescaleDowntime <= 0 {
				t.Error("rescale must account downtime")
			}
			if res.RescaleMovedBytes <= 0 {
				t.Error("changing the window operator's parallelism must move state")
			}
			snap := res.Metrics.Snapshot()
			if snap["job.rescales"] != 1 {
				t.Errorf("job.rescales = %v, want 1", snap["job.rescales"])
			}
		})
	}
}

// TestDistRescaleValidation covers the coordinator-side static rejections.
func TestDistRescaleValidation(t *testing.T) {
	fx := newDistFixture(t, "Q1-sliding")
	bad := []engine.RescalePlan{
		{Op: "nope", Parallelism: 2},
		{Op: "slide-win", Parallelism: 0},
		{Op: "slide-win", Parallelism: engine.DefaultKeyGroups + 1},
		{Op: "slide-win", Parallelism: 4, AtEpoch: -1},
	}
	for _, p := range bad {
		if _, err := NewCoordinator("127.0.0.1:0", fx.deploy, distWorkers, CoordinatorOptions{
			Rescales: []engine.RescalePlan{p},
		}); err == nil {
			t.Errorf("rescale plan %+v accepted", p)
		}
	}
	noSnap := fx.deploy
	noSnap.SnapshotInterval = 0
	if _, err := NewCoordinator("127.0.0.1:0", noSnap, distWorkers, CoordinatorOptions{
		Rescales: []engine.RescalePlan{{Op: "slide-win", Parallelism: 4}},
	}); err == nil {
		t.Error("rescale without SnapshotInterval accepted")
	}
}

func TestDistValidation(t *testing.T) {
	fx := newDistFixture(t, "Q3-inf")
	if _, err := NewCoordinator("127.0.0.1:0", fx.deploy, 0, CoordinatorOptions{}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := NewCoordinator("127.0.0.1:0", fx.deploy, distWorkers+1, CoordinatorOptions{}); err == nil {
		t.Error("more worker processes than spec workers accepted")
	}
	empty := fx.deploy
	empty.Assign = nil
	if _, err := NewCoordinator("127.0.0.1:0", empty, distWorkers, CoordinatorOptions{}); err == nil {
		t.Error("empty assignment accepted")
	}
	co, err := NewCoordinator("127.0.0.1:0", fx.deploy, distWorkers, CoordinatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Shutdown()
	if _, err := co.Run(context.Background()); err == nil {
		t.Error("Run before WaitJoined accepted")
	}

	alive := map[int]bool{0: true, 1: true}
	prev := []TaskAssignment{
		{Task: engine.WireTaskID{Op: "a", Index: 0}, Worker: 2},
		{Task: engine.WireTaskID{Op: "b", Index: 0}, Worker: 0},
	}
	cases := []struct {
		name string
		next []TaskAssignment
	}{
		{"dropped task", prev[:1]},
		{"invented task", []TaskAssignment{prev[0], {Task: engine.WireTaskID{Op: "c", Index: 0}, Worker: 0}}},
		{"duplicate task", []TaskAssignment{prev[0], prev[0]}},
		{"dead worker", []TaskAssignment{{Task: prev[0].Task, Worker: 2}, {Task: prev[1].Task, Worker: 0}}},
	}
	for _, tc := range cases {
		if err := validateAssign(tc.next, prev, alive); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	good := []TaskAssignment{
		{Task: prev[0].Task, Worker: 0},
		{Task: prev[1].Task, Worker: 1},
	}
	if err := validateAssign(good, prev, alive); err != nil {
		t.Errorf("valid re-placement rejected: %v", err)
	}
}
