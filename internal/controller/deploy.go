package controller

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/simulator"
)

// Deployment is a fully prepared query deployment.
type Deployment struct {
	Spec nexmark.QuerySpec
	Phys *dataflow.PhysicalGraph
	Plan *dataflow.Plan
}

// EngineCluster converts the controller's cluster view into the live
// engine's worker spec. Every deployment path onto the engine (recovery
// runs, live CLI jobs, experiments) goes through this one translation.
func EngineCluster(c *cluster.Cluster) engine.ClusterSpec {
	spec := engine.ClusterSpec{}
	for i := 0; i < c.NumWorkers(); i++ {
		w := c.Worker(i)
		spec.Workers = append(spec.Workers, engine.WorkerSpec{
			ID: w.ID, Slots: w.Slots, Cores: w.CPU, IOBps: w.IOBandwidth, NetBps: w.NetBandwidth,
		})
	}
	return spec
}

// usageFor derives the task usage vectors from a query's (profiled) graph
// and target rates.
func usageFor(g *dataflow.LogicalGraph, sourceRates map[dataflow.OperatorID]float64) (*costmodel.Usage, error) {
	rates, err := dataflow.PropagateRates(g, sourceRates)
	if err != nil {
		return nil, err
	}
	return costmodel.FromRates(g, rates), nil
}

// DeploySingle prepares one query on the cluster with the given strategy
// and evaluates it on the simulator. It is the workflow behind the paper's
// single-query experiments (§6.2.1).
func DeploySingle(ctx context.Context, spec nexmark.QuerySpec, c *cluster.Cluster, strat placement.Strategy, seed int64, cfg simulator.Config) (*Deployment, *simulator.Result, error) {
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, nil, err
	}
	u, err := usageFor(spec.Graph, spec.SourceRates)
	if err != nil {
		return nil, nil, err
	}
	plan, err := strat.Place(ctx, phys, c, u, seed)
	if err != nil {
		return nil, nil, err
	}
	dep := &Deployment{Spec: spec, Phys: phys, Plan: plan}
	res, err := simulator.Evaluate([]simulator.QueryDeployment{{
		Name: spec.Name, Phys: phys, Plan: plan, SourceRates: spec.SourceRates,
	}}, c, cfg)
	if err != nil {
		return nil, nil, err
	}
	return dep, res, nil
}

// DeployAll places a multi-query workload on one shared cluster and
// evaluates it (§6.2.2).
//
// With a CAPS strategy the entire workload is merged into a single dataflow
// graph and placed globally, accounting for cross-query contention. With the
// Flink baselines, queries are placed one at a time in a seed-shuffled
// submission order (the baselines are order-sensitive, which is why the
// paper randomizes submission order across runs), each seeing only the slots
// left over by its predecessors.
func DeployAll(ctx context.Context, specs []nexmark.QuerySpec, c *cluster.Cluster, strat placement.Strategy, seed int64, cfg simulator.Config) ([]Deployment, *simulator.Result, error) {
	if len(specs) == 0 {
		return nil, nil, fmt.Errorf("controller: no queries")
	}
	var deps []Deployment
	var err error
	if strat.Name() == "caps" {
		deps, err = placeJointly(ctx, specs, c, strat, seed)
	} else {
		deps, err = placeSequentially(ctx, specs, c, strat, seed)
	}
	if err != nil {
		return nil, nil, err
	}
	var sdeps []simulator.QueryDeployment
	for _, d := range deps {
		sdeps = append(sdeps, simulator.QueryDeployment{
			Name: d.Spec.Name, Phys: d.Phys, Plan: d.Plan, SourceRates: d.Spec.SourceRates,
		})
	}
	res, err := simulator.Evaluate(sdeps, c, cfg)
	if err != nil {
		return nil, nil, err
	}
	return deps, res, nil
}

// qualify namespaces an operator ID with its query name.
func qualify(query string, id dataflow.OperatorID) dataflow.OperatorID {
	return dataflow.OperatorID(query + "/" + string(id))
}

// placeJointly merges all queries into one logical graph (operator IDs
// namespaced by query) and runs the strategy once over the union.
func placeJointly(ctx context.Context, specs []nexmark.QuerySpec, c *cluster.Cluster, strat placement.Strategy, seed int64) ([]Deployment, error) {
	merged := dataflow.NewLogicalGraph()
	mergedRates := make(map[dataflow.OperatorID]float64)
	for _, spec := range specs {
		for _, op := range spec.Graph.Operators() {
			cp := *op
			cp.ID = qualify(spec.Name, op.ID)
			if err := merged.AddOperator(cp); err != nil {
				return nil, err
			}
		}
		for _, e := range spec.Graph.Edges() {
			if err := merged.AddEdge(dataflow.Edge{
				From: qualify(spec.Name, e.From),
				To:   qualify(spec.Name, e.To),
				Mode: e.Mode,
			}); err != nil {
				return nil, err
			}
		}
		for id, r := range spec.SourceRates {
			mergedRates[qualify(spec.Name, id)] = r
		}
	}
	mergedPhys, err := dataflow.Expand(merged)
	if err != nil {
		return nil, err
	}
	u, err := usageFor(merged, mergedRates)
	if err != nil {
		return nil, err
	}
	plan, err := strat.Place(ctx, mergedPhys, c, u, seed)
	if err != nil {
		return nil, err
	}
	// Split the global plan back into per-query plans.
	out := make([]Deployment, 0, len(specs))
	for _, spec := range specs {
		phys, err := dataflow.Expand(spec.Graph)
		if err != nil {
			return nil, err
		}
		pl := dataflow.NewPlan()
		for _, t := range phys.Tasks() {
			w, ok := plan.Worker(dataflow.TaskID{Op: qualify(spec.Name, t.Op), Index: t.Index})
			if !ok {
				return nil, fmt.Errorf("controller: joint plan missing task %v of %s", t, spec.Name)
			}
			pl.Assign(t, w)
		}
		out = append(out, Deployment{Spec: spec, Phys: phys, Plan: pl})
	}
	return out, nil
}

// placeSequentially deploys queries one at a time in a seed-shuffled order,
// exposing to each query only the slots its predecessors left free.
func placeSequentially(ctx context.Context, specs []nexmark.QuerySpec, c *cluster.Cluster, strat placement.Strategy, seed int64) ([]Deployment, error) {
	order := rand.New(rand.NewSource(seed)).Perm(len(specs))
	used := make([]int, c.NumWorkers())
	out := make([]Deployment, len(specs))
	for submitIdx, qi := range order {
		spec := specs[qi]
		phys, err := dataflow.Expand(spec.Graph)
		if err != nil {
			return nil, err
		}
		u, err := usageFor(spec.Graph, spec.SourceRates)
		if err != nil {
			return nil, err
		}
		// Build a view of the cluster restricted to free slots, keeping a
		// mapping from view worker index back to the real index.
		var viewWorkers []cluster.Worker
		var backing []int
		for w := 0; w < c.NumWorkers(); w++ {
			free := c.Worker(w).Slots - used[w]
			if free <= 0 {
				continue
			}
			vw := c.Worker(w)
			vw.Slots = free
			viewWorkers = append(viewWorkers, vw)
			backing = append(backing, w)
		}
		if len(viewWorkers) == 0 {
			return nil, fmt.Errorf("controller: no free slots for query %s", spec.Name)
		}
		view, err := cluster.New(viewWorkers)
		if err != nil {
			return nil, err
		}
		plan, err := strat.Place(ctx, phys, view, u, seed+int64(submitIdx)+1)
		if err != nil {
			return nil, fmt.Errorf("controller: placing %s: %w", spec.Name, err)
		}
		real := dataflow.NewPlan()
		for _, t := range phys.Tasks() {
			vw := plan.MustWorker(t)
			real.Assign(t, backing[vw])
			used[backing[vw]]++
		}
		out[qi] = Deployment{Spec: spec, Phys: phys, Plan: real}
	}
	return out, nil
}

// QueryNameOf recovers the query name from a namespaced operator ID, or ""
// if the ID is not namespaced.
func QueryNameOf(id dataflow.OperatorID) string {
	if i := strings.IndexByte(string(id), '/'); i >= 0 {
		return string(id)[:i]
	}
	return ""
}
