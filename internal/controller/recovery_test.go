package controller

import (
	"context"
	"testing"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
)

func recoveryCluster(t *testing.T, spec nexmark.QuerySpec, workers int) *cluster.Cluster {
	t.Helper()
	// Size slots so that one worker can die and the survivors still host
	// the whole graph.
	tasks := spec.Graph.TotalTasks()
	slots := tasks/(workers-1) + 1
	c, err := cluster.Homogeneous(workers, slots, 8, 500e6, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunRecoveryReconciles(t *testing.T) {
	spec, err := nexmark.ByName("Q1-sliding")
	if err != nil {
		t.Fatal(err)
	}
	c := recoveryCluster(t, spec, 4)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	out, err := RunRecovery(ctx, spec, c, placement.FlinkEvenly{}, RecoveryOptions{
		Seed:             7,
		RecordsPerSource: 600,
		SnapshotInterval: 100,
		KillWorker:       -1,
		KillAtEpoch:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := out.Result
	if !out.Recovered || res.Recoveries != 1 {
		t.Fatalf("expected one recovery, got recovered=%v recoveries=%d", out.Recovered, res.Recoveries)
	}
	if res.Failed {
		t.Error("recovered job reported Failed")
	}
	if res.LostRecords != 0 {
		t.Errorf("recovered job lost %d records", res.LostRecords)
	}
	if out.TasksOnKilled <= 0 {
		t.Errorf("kill worker selection picked an empty worker (%d tasks)", out.TasksOnKilled)
	}
	if out.MovedTasks < out.TasksOnKilled {
		t.Errorf("moved %d tasks, but %d lived on the dead worker", out.MovedTasks, out.TasksOnKilled)
	}
	// Every source record must be accounted for after the restart.
	var wantSrc int64
	for _, op := range spec.Graph.Operators() {
		if len(spec.Graph.Upstream(op.ID)) == 0 {
			wantSrc += int64(op.Parallelism) * 600
		}
	}
	if res.SourceRecords != wantSrc {
		t.Errorf("source records = %d, want %d", res.SourceRecords, wantSrc)
	}
	snap := res.Metrics.Snapshot()
	if snap["controller.replacement_seconds"] <= 0 {
		t.Error("controller.replacement_seconds not exported")
	}
	if snap["controller.tasks_moved"] != float64(out.MovedTasks) {
		t.Errorf("controller.tasks_moved = %v, want %d", snap["controller.tasks_moved"], out.MovedTasks)
	}
	if snap["job.recoveries"] != 1 {
		t.Errorf("job.recoveries = %v, want 1", snap["job.recoveries"])
	}
}

func TestRunRecoveryDeterministicOutcome(t *testing.T) {
	spec, err := nexmark.ByName("Q1-sliding")
	if err != nil {
		t.Fatal(err)
	}
	c := recoveryCluster(t, spec, 4)
	run := func() *RecoveryOutcome {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		out, err := RunRecovery(ctx, spec, c, placement.FlinkDefault{}, RecoveryOptions{
			Seed:             3,
			RecordsPerSource: 400,
			SnapshotInterval: 100,
			KillWorker:       -1,
			KillAtEpoch:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Result.SinkRecords != b.Result.SinkRecords ||
		a.Result.SourceRecords != b.Result.SourceRecords ||
		a.Result.Recoveries != b.Result.Recoveries ||
		a.KilledWorker != b.KilledWorker ||
		a.MovedTasks != b.MovedTasks {
		t.Errorf("recovery outcome not reproducible:\n  a: sink=%d src=%d rec=%d kill=%d moved=%d\n  b: sink=%d src=%d rec=%d kill=%d moved=%d",
			a.Result.SinkRecords, a.Result.SourceRecords, a.Result.Recoveries, a.KilledWorker, a.MovedTasks,
			b.Result.SinkRecords, b.Result.SourceRecords, b.Result.Recoveries, b.KilledWorker, b.MovedTasks)
	}
}

func TestRunRecoveryDegraded(t *testing.T) {
	spec, err := nexmark.ByName("Q1-sliding")
	if err != nil {
		t.Fatal(err)
	}
	c := recoveryCluster(t, spec, 4)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	out, err := RunRecovery(ctx, spec, c, placement.FlinkEvenly{}, RecoveryOptions{
		Seed:             7,
		RecordsPerSource: 600,
		SnapshotInterval: 100,
		KillWorker:       -1,
		KillAtEpoch:      2,
		NoRecovery:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Recovered {
		t.Error("NoRecovery run reported Recovered")
	}
	if !out.Result.Failed {
		t.Error("degraded run did not report Failed")
	}
	if out.Result.LostRecords == 0 {
		t.Error("degraded run lost no records despite a dead worker with tasks")
	}
}

func TestReplaceInfeasibleIsExplicit(t *testing.T) {
	spec, err := nexmark.ByName("Q1-sliding")
	if err != nil {
		t.Fatal(err)
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	u, err := usageFor(spec.Graph, spec.SourceRates)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly enough slots with all workers alive: any death is infeasible.
	tasks := phys.NumTasks()
	c, err := cluster.Homogeneous(2, (tasks+1)/2, 8, 500e6, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Replace(context.Background(), phys, c, placement.FlinkEvenly{}, u, []int{0}, 1, nil)
	if err == nil {
		t.Fatal("Replace on slot-starved survivors returned a plan, want explicit error")
	}
}
