package controller

import (
	"context"
	"fmt"
	"math"
	"sort"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
	"capsys/internal/ds2"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/simulator"
	"capsys/internal/telemetry"
)

// Phase is one segment of a variable workload: the base source rates scaled
// by RateFactor for Ticks control intervals.
type Phase struct {
	Ticks      int
	RateFactor float64
}

// TimelineOptions configures the reconfiguration loop.
type TimelineOptions struct {
	// InitialParallelism overrides the spec's parallelism at deployment
	// (nil keeps the spec; the paper's convergence experiment starts all
	// operators at 1).
	InitialParallelism map[dataflow.OperatorID]int
	// ActivationTicks is the minimum number of ticks between scaling
	// actions (DS2's activation time).
	ActivationTicks int
	// BackpressureTrigger re-evaluates scaling when backpressure exceeds
	// this fraction even if the rate did not change.
	BackpressureTrigger float64
	// Headroom and MaxParallelism are forwarded to DS2.
	Headroom       float64
	MaxParallelism int
	// Seed drives the randomized placement strategies; it advances on every
	// reconfiguration, modeling the fresh randomness of each redeployment.
	Seed int64
	// SimConfig is the contention model.
	SimConfig simulator.Config
	// Tracer, when set, records one controller.decision event per control
	// interval: the observed metrics snapshot and whether the
	// profile -> DS2 -> placement pipeline reconfigured the job.
	Tracer *telemetry.Tracer
}

// Tick is one control interval's record.
type Tick struct {
	Tick          int
	TargetRate    float64
	Throughput    float64
	Backpressure  float64
	TotalTasks    int
	ScalingAction bool
	// Overprovisioned reports whether any operator's parallelism exceeds
	// the minimum needed for the current target (computed from ground-truth
	// unit costs).
	Overprovisioned bool
	Parallelism     map[dataflow.OperatorID]int
}

// TimelineResult is the full trace of a variable-workload run.
type TimelineResult struct {
	Ticks          []Tick
	ScalingActions int
}

// RunTimeline executes the DS2 + placement reconfiguration loop over the
// given workload phases, reproducing the paper's §6.4 methodology: at every
// control interval the simulator provides a metrics snapshot; when the
// snapshot shows the query missing its target (or DS2's model demands a
// different parallelism), the controller rescales with DS2 and recomputes
// the placement with the configured strategy.
func RunTimeline(ctx context.Context, spec nexmark.QuerySpec, c *cluster.Cluster, strat placement.Strategy, phases []Phase, opts TimelineOptions) (*TimelineResult, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("controller: no workload phases")
	}
	if opts.ActivationTicks < 1 {
		opts.ActivationTicks = 1
	}
	g := spec.Graph.Clone()
	if opts.InitialParallelism != nil {
		var err error
		g, err = g.Rescale(opts.InitialParallelism)
		if err != nil {
			return nil, err
		}
	}
	seed := opts.Seed
	deployErrBudget := 0

	// Warm-capable strategies are seeded with the outgoing plan on every
	// redeploy: steady-state reconfigurations (rescaling one operator, or
	// re-placing after a rate change) mostly keep the previous assignment
	// feasible, so the search rediscovers it without backtracking.
	var prevPlan *dataflow.Plan
	deploy := func(g *dataflow.LogicalGraph, rates map[dataflow.OperatorID]float64) (*dataflow.PhysicalGraph, *dataflow.Plan, error) {
		phys, err := dataflow.Expand(g)
		if err != nil {
			return nil, nil, err
		}
		u, err := usageFor(g, rates)
		if err != nil {
			return nil, nil, err
		}
		var plan *dataflow.Plan
		if wp, ok := strat.(placement.WarmPlacer); ok {
			plan, err = wp.PlaceWarm(ctx, phys, c, u, seed, prevPlan)
		} else {
			plan, err = strat.Place(ctx, phys, c, u, seed)
		}
		seed++
		if err != nil {
			return nil, nil, err
		}
		prevPlan = plan
		return phys, plan, nil
	}

	rates := scaleRates(spec.SourceRates, phases[0].RateFactor)
	phys, plan, err := deploy(g, rates)
	if err != nil {
		return nil, err
	}

	res := &TimelineResult{}
	tick := 0
	lastAction := -opts.ActivationTicks
	for _, ph := range phases {
		rates = scaleRates(spec.SourceRates, ph.RateFactor)
		for i := 0; i < ph.Ticks; i++ {
			sim, err := simulator.Evaluate([]simulator.QueryDeployment{{
				Name: spec.Name, Phys: phys, Plan: plan, SourceRates: rates,
			}}, c, opts.SimConfig)
			if err != nil {
				return nil, err
			}
			qm := sim.Queries[spec.Name]
			rec := Tick{
				Tick:            tick,
				TargetRate:      qm.Target,
				Throughput:      qm.Throughput,
				Backpressure:    qm.Backpressure,
				TotalTasks:      g.TotalTasks(),
				Overprovisioned: overprovisioned(spec.Graph, g, rates),
				Parallelism:     parallelismOf(g),
			}

			acted := false
			if tick-lastAction >= opts.ActivationTicks {
				dec, derr := scaleFromSim(g, sim, spec.Name, rates, opts)
				if derr == nil && dec.Changed {
					ng, rerr := g.Rescale(dec.Parallelism)
					if rerr == nil {
						ng = clampToCluster(ng, c)
						nphys, nplan, derr2 := deploy(ng, rates)
						if derr2 == nil {
							g, phys, plan = ng, nphys, nplan
							acted = true
							lastAction = tick
							res.ScalingActions++
						} else {
							deployErrBudget++
							if deployErrBudget > 10 {
								return nil, fmt.Errorf("controller: repeated redeploy failures: %w", derr2)
							}
						}
					}
				}
			}
			rec.ScalingAction = acted
			opts.Tracer.Emit(telemetry.Event{
				Kind:  telemetry.EventDecision,
				Query: spec.Name,
				Attrs: map[string]any{
					"tick":         tick,
					"target_rate":  qm.Target,
					"throughput":   qm.Throughput,
					"backpressure": qm.Backpressure,
					"total_tasks":  g.TotalTasks(),
					"rescaled":     acted,
				},
			})
			res.Ticks = append(res.Ticks, rec)
			tick++
		}
	}
	return res, nil
}

// scaleFromSim converts the simulator's task telemetry into DS2 metrics and
// runs the scaling model.
func scaleFromSim(g *dataflow.LogicalGraph, sim *simulator.Result, query string, rates map[dataflow.OperatorID]float64, opts TimelineOptions) (*ds2.Decision, error) {
	obs := make(map[dataflow.TaskID]ds2.TaskRates)
	for k, tm := range sim.Tasks {
		if k.Query != query {
			continue
		}
		useful := tm.UsefulFraction
		if useful <= 0 {
			useful = 1e-9
		}
		if useful > 1 {
			useful = 1
		}
		obs[k.Task] = ds2.TaskRates{
			ObservedIn:     tm.ObservedInRate,
			ObservedOut:    tm.ObservedOutRate,
			UsefulFraction: useful,
		}
	}
	m, err := ds2.MetricsFromObservation(g, obs)
	if err != nil {
		return nil, err
	}
	return ds2.Scale(g, m, rates, ds2.Options{
		MaxParallelism: opts.MaxParallelism,
		Headroom:       opts.Headroom,
	})
}

// scaleRates multiplies every source rate by f.
func scaleRates(base map[dataflow.OperatorID]float64, f float64) map[dataflow.OperatorID]float64 {
	out := make(map[dataflow.OperatorID]float64, len(base))
	for k, v := range base {
		out[k] = v * f
	}
	return out
}

func parallelismOf(g *dataflow.LogicalGraph) map[dataflow.OperatorID]int {
	out := make(map[dataflow.OperatorID]int, g.NumOperators())
	for _, op := range g.Operators() {
		out[op.ID] = op.Parallelism
	}
	return out
}

// IdealParallelism computes, from ground-truth unit costs, the minimum
// parallelism per operator that can sustain the given source rates when
// every task runs uncontended (one full CPU share per slot). It is the
// yardstick for the paper's over-provisioning check (Table 4).
func IdealParallelism(truth *dataflow.LogicalGraph, rates map[dataflow.OperatorID]float64) map[dataflow.OperatorID]int {
	out := make(map[dataflow.OperatorID]int, truth.NumOperators())
	rp, err := dataflow.PropagateRates(truth, rates)
	if err != nil {
		for _, op := range truth.Operators() {
			out[op.ID] = 1
		}
		return out
	}
	for _, op := range truth.Operators() {
		p := 1
		if op.Cost.CPU > 0 {
			p = int(math.Ceil(rp.In[op.ID] * op.Cost.CPU))
		}
		if p < 1 {
			p = 1
		}
		out[op.ID] = p
	}
	return out
}

// overprovisioned reports whether the deployed graph g uses more parallelism
// than the ideal for the current rates on any operator. One extra task per
// operator is tolerated: DS2's true-rate estimates sit at ceil boundaries,
// so a single-task overshoot is measurement rounding, not over-provisioning.
func overprovisioned(truth, g *dataflow.LogicalGraph, rates map[dataflow.OperatorID]float64) bool {
	const slack = 1
	ideal := IdealParallelism(truth, rates)
	for _, op := range g.Operators() {
		if op.Parallelism > ideal[op.ID]+slack {
			return true
		}
	}
	return false
}

// clampToCluster shrinks per-operator parallelism until the graph fits the
// cluster's total slots, reducing the largest operators first.
func clampToCluster(g *dataflow.LogicalGraph, c *cluster.Cluster) *dataflow.LogicalGraph {
	total := g.TotalTasks()
	slots := c.TotalSlots()
	if total <= slots {
		return g
	}
	ops := g.Operators()
	for total > slots {
		sort.SliceStable(ops, func(i, j int) bool { return ops[i].Parallelism > ops[j].Parallelism })
		if ops[0].Parallelism <= 1 {
			break
		}
		// SetParallelism mutates the clone's operator in place.
		_ = g.SetParallelism(ops[0].ID, ops[0].Parallelism-1)
		total--
	}
	return g
}
