package controller

import (
	"context"
	"math"
	"testing"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/simulator"
)

func TestProfileRecoversUnitCosts(t *testing.T) {
	spec := nexmark.Q1Sliding()
	pr, err := Profile(context.Background(), spec, 0.1, simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range spec.Graph.Operators() {
		got, ok := pr.Costs[op.ID]
		if !ok {
			t.Fatalf("no profiled cost for %s", op.ID)
		}
		want := op.Cost
		closeEnough := func(a, b float64) bool {
			if b == 0 {
				return a < 1e-12
			}
			return math.Abs(a-b)/b < 0.05
		}
		if !closeEnough(got.CPU, want.CPU) || !closeEnough(got.IO, want.IO) || !closeEnough(got.Net, want.Net) {
			t.Errorf("%s: profiled %+v, truth %+v", op.ID, got, want)
		}
	}
}

func TestProfileApply(t *testing.T) {
	spec := nexmark.Q1Sliding()
	pr, err := Profile(context.Background(), spec, 0.1, simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g, err := pr.Apply(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if g == spec.Graph {
		t.Error("Apply must clone")
	}
	// Missing cost -> error.
	delete(pr.Costs, "map")
	if _, err := pr.Apply(spec.Graph); err == nil {
		t.Error("missing cost accepted")
	}
}

func TestProfileValidation(t *testing.T) {
	spec := nexmark.Q1Sliding()
	if _, err := Profile(context.Background(), spec, 0, simulator.DefaultConfig()); err == nil {
		t.Error("zero probe fraction accepted")
	}
	if _, err := Profile(context.Background(), spec, 1.5, simulator.DefaultConfig()); err == nil {
		t.Error("probe fraction > 1 accepted")
	}
}

func TestDeploySingleCAPSMeetsTarget(t *testing.T) {
	spec := nexmark.Q1Sliding()
	c := nexmark.ReferenceCluster()
	dep, res, err := DeploySingle(context.Background(), spec, c, placement.CAPS{}, 0, simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	slots, _ := c.SlotsPerWorker()
	if err := dep.Plan.Validate(dep.Phys, c.NumWorkers(), slots); err != nil {
		t.Errorf("invalid plan: %v", err)
	}
	if res.Queries[spec.Name].Admission < 0.9 {
		t.Errorf("CAPS admission = %v", res.Queries[spec.Name].Admission)
	}
}

func TestDeployAllJointVsSequential(t *testing.T) {
	// Six queries sized for 4 dedicated workers each share 18 workers, so
	// jointly attainable targets are ~70% of single-query saturation.
	var specs []nexmark.QuerySpec
	for _, s := range nexmark.AllQueries() {
		specs = append(specs, s.Scaled(0.7))
	}
	c := nexmark.MultiTenantCluster()
	cfg := simulator.DefaultConfig()

	capsDeps, capsRes, err := DeployAll(context.Background(), specs, c, placement.CAPS{}, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(capsDeps) != len(specs) {
		t.Fatalf("caps deployments = %d", len(capsDeps))
	}
	// Combined slot usage respected (simulator validates, but double-check
	// plans individually too).
	for _, d := range capsDeps {
		for _, task := range d.Phys.Tasks() {
			if _, ok := d.Plan.Worker(task); !ok {
				t.Fatalf("task %v unassigned in joint plan", task)
			}
		}
	}

	defRes := make([]*simulator.Result, 0, 3)
	for seed := int64(0); seed < 3; seed++ {
		_, r, err := DeployAll(context.Background(), specs, c, placement.FlinkDefault{}, seed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defRes = append(defRes, r)
	}

	// CAPS meets (or nearly meets) every target; the baselines collectively
	// miss at least one query in at least one run.
	for _, q := range specs {
		if capsRes.Queries[q.Name].Admission < 0.85 {
			t.Errorf("caps: %s admission %v", q.Name, capsRes.Queries[q.Name].Admission)
		}
	}
	worstDefault := 1.0
	for _, r := range defRes {
		for _, q := range specs {
			if a := r.Queries[q.Name].Admission; a < worstDefault {
				worstDefault = a
			}
		}
	}
	capsWorst := 1.0
	for _, q := range specs {
		if a := capsRes.Queries[q.Name].Admission; a < capsWorst {
			capsWorst = a
		}
	}
	if worstDefault >= capsWorst {
		t.Errorf("default worst admission %v >= caps worst %v", worstDefault, capsWorst)
	}
}

func TestDeployAllSequentialOrderSensitivity(t *testing.T) {
	specs := nexmark.AllQueries()
	c := nexmark.MultiTenantCluster()
	deps1, _, err := DeployAll(context.Background(), specs, c, placement.FlinkDefault{}, 1, simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	deps2, _, err := DeployAll(context.Background(), specs, c, placement.FlinkDefault{}, 2, simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range deps1 {
		if !deps1[i].Plan.Equal(deps2[i].Plan) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical sequential deployments")
	}
}

func TestDeployAllEmpty(t *testing.T) {
	if _, _, err := DeployAll(context.Background(), nil, nexmark.ReferenceCluster(), placement.CAPS{}, 0, simulator.DefaultConfig()); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestQueryNameOf(t *testing.T) {
	if QueryNameOf(qualify("Q1", "src")) != "Q1" {
		t.Error("QueryNameOf failed on namespaced ID")
	}
	if QueryNameOf("plain") != "" {
		t.Error("QueryNameOf nonempty for plain ID")
	}
}

func TestRunTimelineConvergesWithCAPS(t *testing.T) {
	spec := nexmark.Q3Inf()
	// Generous pool so DS2 has room to scale.
	c, err := cluster.Homogeneous(8, 8, 4.0, 200e6, 1.25e9)
	if err != nil {
		t.Fatal(err)
	}
	initial := map[dataflow.OperatorID]int{}
	for _, op := range spec.Graph.Operators() {
		initial[op.ID] = 1
	}
	phases := []Phase{{Ticks: 6, RateFactor: 0.3}, {Ticks: 6, RateFactor: 0.9}, {Ticks: 6, RateFactor: 0.3}}
	res, err := RunTimeline(context.Background(), spec, c, placement.CAPS{}, phases, TimelineOptions{
		InitialParallelism: initial,
		ActivationTicks:    1,
		MaxParallelism:     16,
		Seed:               1,
		SimConfig:          simulator.DefaultConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ticks) != 18 {
		t.Fatalf("got %d ticks", len(res.Ticks))
	}
	// By the end of each phase, throughput must be at target.
	for _, idx := range []int{5, 11, 17} {
		tk := res.Ticks[idx]
		if tk.Throughput < 0.95*tk.TargetRate {
			t.Errorf("tick %d: throughput %v below target %v", idx, tk.Throughput, tk.TargetRate)
		}
	}
	if res.ScalingActions == 0 {
		t.Error("no scaling actions recorded")
	}
	// Scale-down must actually shed tasks: final phase uses fewer tasks
	// than the peak.
	peak, final := 0, res.Ticks[17].TotalTasks
	for _, tk := range res.Ticks {
		if tk.TotalTasks > peak {
			peak = tk.TotalTasks
		}
	}
	if final >= peak {
		t.Errorf("no scale-down: final tasks %d, peak %d", final, peak)
	}
}

func TestRunTimelineCAPSFewerActionsThanDefault(t *testing.T) {
	spec := nexmark.Q3Inf()
	c, err := cluster.Homogeneous(8, 8, 4.0, 200e6, 1.25e9)
	if err != nil {
		t.Fatal(err)
	}
	initial := map[dataflow.OperatorID]int{}
	for _, op := range spec.Graph.Operators() {
		initial[op.ID] = 1
	}
	phases := []Phase{
		{Ticks: 8, RateFactor: 0.3}, {Ticks: 8, RateFactor: 0.9},
		{Ticks: 8, RateFactor: 0.3}, {Ticks: 8, RateFactor: 0.9},
	}
	run := func(s placement.Strategy, seed int64) int {
		res, err := RunTimeline(context.Background(), spec, c, s, phases, TimelineOptions{
			InitialParallelism: initial,
			ActivationTicks:    2,
			MaxParallelism:     16,
			Seed:               seed,
			SimConfig:          simulator.DefaultConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ScalingActions
	}
	capsActions := run(placement.CAPS{}, 1)
	defActions := 0
	const runs = 3
	for seed := int64(1); seed <= runs; seed++ {
		defActions += run(placement.FlinkDefault{}, seed)
	}
	if float64(capsActions) > float64(defActions)/runs {
		t.Errorf("CAPS scaling actions %d exceed default average %v", capsActions, float64(defActions)/runs)
	}
}

func TestRunTimelineValidation(t *testing.T) {
	spec := nexmark.Q1Sliding()
	c := nexmark.ReferenceCluster()
	if _, err := RunTimeline(context.Background(), spec, c, placement.CAPS{}, nil, TimelineOptions{SimConfig: simulator.DefaultConfig()}); err == nil {
		t.Error("empty phases accepted")
	}
}

func TestIdealParallelism(t *testing.T) {
	spec := nexmark.Q3Inf()
	ideal := IdealParallelism(spec.Graph, spec.SourceRates)
	// inference: 1400 rec/s x 5.5e-3 = 7.7 -> 8 tasks.
	if ideal["inference"] != 8 {
		t.Errorf("ideal inference parallelism = %d, want 8", ideal["inference"])
	}
	for op, p := range ideal {
		if p < 1 {
			t.Errorf("ideal[%s] = %d", op, p)
		}
	}
}

func TestClampToCluster(t *testing.T) {
	spec := nexmark.Q1Sliding()
	g, err := spec.Graph.Rescale(map[dataflow.OperatorID]int{"slide-win": 40})
	if err != nil {
		t.Fatal(err)
	}
	c := nexmark.ReferenceCluster() // 16 slots
	clamped := clampToCluster(g, c)
	if clamped.TotalTasks() > c.TotalSlots() {
		t.Errorf("clamped graph still has %d tasks", clamped.TotalTasks())
	}
	// Clamping an already-fitting graph is a no-op.
	ok := spec.Graph.Clone()
	if got := clampToCluster(ok, c); got.TotalTasks() != ok.TotalTasks() {
		t.Error("clamp changed a fitting graph")
	}
}

// Profiling recovers the ground-truth unit costs for every benchmark query,
// not just Q1 (the profiler isolates operators, so cross-operator topology
// must not leak into the estimates).
func TestProfileAllQueries(t *testing.T) {
	for _, spec := range nexmark.AllQueries() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			pr, err := Profile(context.Background(), spec, 0.1, simulator.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range spec.Graph.Operators() {
				got := pr.Costs[op.ID]
				want := op.Cost
				within := func(a, b float64) bool {
					if b == 0 {
						return a < 1e-9
					}
					return math.Abs(a-b)/b < 0.05
				}
				if !within(got.CPU, want.CPU) || !within(got.IO, want.IO) || !within(got.Net, want.Net) {
					t.Errorf("%s: profiled %+v, truth %+v", op.ID, got, want)
				}
			}
		})
	}
}
