package controller

import (
	"context"
	"testing"
	"time"

	"capsys/internal/dataflow"
	"capsys/internal/ds2"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
)

func TestRunRescaleLive(t *testing.T) {
	spec, err := nexmark.ByName("Q1-sliding")
	if err != nil {
		t.Fatal(err)
	}
	c := recoveryCluster(t, spec, 4)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	for _, strat := range []placement.Strategy{placement.FlinkEvenly{}, placement.CAPS{}} {
		t.Run(strat.Name(), func(t *testing.T) {
			out, err := RunRescale(ctx, spec, c, strat, RescaleOptions{
				Seed:             7,
				RecordsPerSource: 600,
				SnapshotInterval: 100,
				SourceRate:       map[dataflow.OperatorID]float64{"src": 20000},
				Rescales:         []engine.RescalePlan{{Op: "slide-win", Parallelism: 5, AtEpoch: 2}},
			})
			if err != nil {
				t.Fatal(err)
			}
			res := out.Result
			if res.Rescales != 1 {
				t.Fatalf("Rescales = %d, want 1", res.Rescales)
			}
			if res.Failed || res.LostRecords != 0 {
				t.Fatalf("rescale lost records: failed=%v lost=%d", res.Failed, res.LostRecords)
			}
			if res.RescaleMovedBytes <= 0 {
				t.Error("shrinking the window operator must move state")
			}
			if res.RescaleDowntime <= 0 {
				t.Error("rescale must account downtime")
			}
			seen := 0
			for id := range res.Tasks {
				if id.Op == "slide-win" {
					seen++
				}
			}
			if seen != 5 {
				t.Errorf("result has %d slide-win tasks, want 5", seen)
			}
			var wantSrc int64
			for _, op := range spec.Graph.Operators() {
				if len(spec.Graph.Upstream(op.ID)) == 0 {
					wantSrc += int64(op.Parallelism) * 600
				}
			}
			if res.SourceRecords != wantSrc {
				t.Errorf("source records = %d, want %d", res.SourceRecords, wantSrc)
			}
			snap := res.Metrics.Snapshot()
			if snap["controller.replacement_seconds"] <= 0 {
				t.Error("controller.replacement_seconds not exported")
			}
			if snap["job.rescales"] != 1 {
				t.Errorf("job.rescales = %v, want 1", snap["job.rescales"])
			}
		})
	}
}

func TestRunRescaleValidation(t *testing.T) {
	spec, err := nexmark.ByName("Q1-sliding")
	if err != nil {
		t.Fatal(err)
	}
	c := recoveryCluster(t, spec, 4)
	ctx := context.Background()
	if _, err := RunRescale(ctx, spec, c, placement.FlinkEvenly{}, RescaleOptions{
		Seed: 1, RecordsPerSource: 100, SnapshotInterval: 50,
	}); err == nil {
		t.Error("empty rescale schedule accepted")
	}
	if _, err := RunRescale(ctx, spec, c, placement.FlinkEvenly{}, RescaleOptions{
		Seed: 1, RecordsPerSource: 100,
		Rescales: []engine.RescalePlan{{Op: "slide-win", Parallelism: 4}},
	}); err == nil {
		t.Error("rescale without SnapshotInterval accepted")
	}
}

func TestPlansFromDecision(t *testing.T) {
	spec, err := nexmark.ByName("Q1-sliding")
	if err != nil {
		t.Fatal(err)
	}
	d := &ds2.Decision{
		Changed: true,
		Parallelism: map[dataflow.OperatorID]int{
			"src":       4, // source: skipped even when the decision differs
			"map":       6,
			"slide-win": 12,
			"ghost":     3, // unknown operator: skipped
		},
	}
	plans := PlansFromDecision(d, spec.Graph, 4)
	if len(plans) != 2 {
		t.Fatalf("got %d plans, want 2: %+v", len(plans), plans)
	}
	// Deterministic lexical order by operator.
	if plans[0].Op != "map" || plans[0].Parallelism != 6 || plans[0].AtEpoch != 4 {
		t.Errorf("plans[0] = %+v", plans[0])
	}
	if plans[1].Op != "slide-win" || plans[1].Parallelism != 12 {
		t.Errorf("plans[1] = %+v", plans[1])
	}
	if PlansFromDecision(&ds2.Decision{Changed: false}, spec.Graph, 1) != nil {
		t.Error("unchanged decision produced plans")
	}
	if PlansFromDecision(nil, spec.Graph, 1) != nil {
		t.Error("nil decision produced plans")
	}
}
