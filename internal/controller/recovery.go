package controller

import (
	"context"
	"fmt"
	"sync"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/telemetry"
)

// RecoveryOptions configures a fault-injection run on the live engine.
type RecoveryOptions struct {
	// Seed drives the deterministic event generators and randomized
	// placement strategies.
	Seed int64
	// RecordsPerSource is the number of records each source task generates.
	RecordsPerSource int64
	// SnapshotInterval is the checkpoint barrier interval in records per
	// source task (must be > 0: worker kills are epoch-aligned).
	SnapshotInterval int64
	// KillWorker is the worker to kill. A negative value selects the worker
	// hosting the most tasks under the initial plan (ties to the lowest
	// index), so the fault hits comparable load under every strategy.
	KillWorker int
	// KillAtEpoch is the checkpoint epoch at which the worker dies.
	KillAtEpoch int64
	// ChannelCapacity is the engine's per-task inbox bound (0 = default).
	ChannelCapacity int
	// Transport selects the engine's data-plane exchange discipline
	// ("unary" or "batched"; "" = engine default). BatchSize and
	// BatchLinger tune the batched transport and are ignored by unary; see
	// engine.JobOptions for defaulting and clamping.
	Transport   string
	BatchSize   int
	BatchLinger time.Duration
	// DisableFusion turns off operator chaining, forcing every Forward edge
	// through the exchange layer (see engine.JobOptions.DisableFusion).
	DisableFusion bool
	// CPUCostScale multiplies the profiled per-record CPU costs (0 = 1).
	CPUCostScale float64
	// NoRecovery disables reconciliation: the kill degrades the job instead
	// of triggering a restart, exposing the lost throughput.
	NoRecovery bool
	// Telemetry, when set, is threaded through to the engine (latency
	// histograms, saturation gauges, checkpoint/fault events) and receives
	// the controller's own placement-decision and reschedule events.
	Telemetry *telemetry.Telemetry
}

// RecoveryOutcome reports one fault-injection run end to end: how long the
// controller took to decide the initial and the replacement placements, what
// the failure cost in downtime and reprocessing, and how the job performed
// after recovery.
type RecoveryOutcome struct {
	Query    string
	Strategy string
	// Transport is the data-plane exchange discipline the job ran under.
	Transport string
	// KilledWorker is the worker index that died.
	KilledWorker int
	// TasksOnKilled is the number of tasks the initial plan had placed on
	// the killed worker.
	TasksOnKilled int
	// PlacementTime is the initial placement decision time.
	PlacementTime time.Duration
	// ReplaceTime is the total re-placement decision time across restarts
	// (the controller-side share of the recovery latency).
	ReplaceTime time.Duration
	// MovedTasks counts tasks whose worker changed in the recovery plan.
	MovedTasks int
	// Recovered reports whether the job restarted from a checkpoint (false
	// when NoRecovery, when no snapshot completed in time, or when the
	// fault never fired).
	Recovered bool
	// Backpressure is the peak per-task backpressure fraction of the run
	// (backpressure time / elapsed), a proxy for post-recovery health.
	Backpressure float64
	// Result is the engine's full job result (downtime, reprocessed
	// records, lost records, metrics registry, ...).
	Result *engine.JobResult
}

// RunRecovery deploys a query on the live engine under the given strategy,
// kills a worker at a checkpoint epoch, and — unless NoRecovery — runs the
// reconciliation loop: detect the failure, drop the dead worker from the
// cluster view, re-run the placement strategy over the survivors, and
// re-deploy from the last complete checkpoint. This is the controller-side
// workflow the paper's §7 discussion sketches for failure handling: placement
// quality shows up twice, once as re-placement decision time (the scheduler
// is on the critical path of recovery) and once as post-recovery
// backpressure on the shrunken cluster.
//
// The controller's contributions are exported on the result's metrics
// registry as "controller.placement_seconds", "controller.replacement_seconds"
// and "controller.tasks_moved", alongside the engine's job.* recovery series.
func RunRecovery(ctx context.Context, spec nexmark.QuerySpec, c *cluster.Cluster, strat placement.Strategy, opts RecoveryOptions) (*RecoveryOutcome, error) {
	if opts.RecordsPerSource <= 0 {
		return nil, fmt.Errorf("controller: RecordsPerSource must be > 0")
	}
	if opts.SnapshotInterval <= 0 {
		return nil, fmt.Errorf("controller: SnapshotInterval must be > 0 (kills are epoch-aligned)")
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, err
	}
	u, err := usageFor(spec.Graph, spec.SourceRates)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	plan, err := strat.Place(ctx, phys, c, u, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("controller: initial placement: %w", err)
	}
	placementTime := time.Since(start)
	tracer := opts.Telemetry.Tracer()
	tracer.Emit(telemetry.Event{
		Kind:  telemetry.EventDecision,
		Query: spec.Name,
		Attrs: map[string]any{
			"phase":        "initial-placement",
			"strategy":     strat.Name(),
			"tasks":        phys.NumTasks(),
			"placement_ms": placementTime.Seconds() * 1e3,
		},
	})

	kill := opts.KillWorker
	if kill < 0 {
		kill = busiestWorker(plan, c.NumWorkers())
	}
	if kill >= c.NumWorkers() {
		return nil, fmt.Errorf("controller: kill worker %d out of range (%d workers)", kill, c.NumWorkers())
	}
	onKilled := len(plan.TasksOn(kill))

	binding, err := nexmark.BindEngine(spec, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.CPUCostScale > 0 && opts.CPUCostScale != 1 {
		for op := range binding.PerRecordCPU {
			binding.PerRecordCPU[op] *= opts.CPUCostScale
		}
	}
	espec := EngineCluster(c)

	var mu sync.Mutex
	var replaceTime time.Duration
	moved := 0
	jobOpts := engine.JobOptions{
		ChannelCapacity:  opts.ChannelCapacity,
		Transport:        opts.Transport,
		BatchSize:        opts.BatchSize,
		BatchLinger:      opts.BatchLinger,
		DisableFusion:    opts.DisableFusion,
		RecordsPerSource: opts.RecordsPerSource,
		PerRecordCPU:     binding.PerRecordCPU,
		Stateful:         binding.Stateful,
		SnapshotInterval: opts.SnapshotInterval,
		FaultPlan: engine.FaultPlan{
			KillWorkers: []engine.WorkerKill{{Worker: kill, AtEpoch: opts.KillAtEpoch}},
		},
		Telemetry: opts.Telemetry,
	}
	if !opts.NoRecovery {
		jobOpts.OnFailure = func(ev engine.FailureEvent) (*dataflow.Plan, error) {
			t := time.Now()
			next, err := Replace(ctx, phys, c, strat, u, ev.DeadWorkers, opts.Seed+int64(ev.Attempt), plan)
			elapsed := time.Since(t)
			movedNow := 0
			mu.Lock()
			replaceTime += elapsed
			if err == nil {
				for _, task := range phys.Tasks() {
					if next.MustWorker(task) != plan.MustWorker(task) {
						moved++
						movedNow++
					}
				}
			}
			mu.Unlock()
			if err == nil {
				tracer.Emit(telemetry.Event{
					Kind:    telemetry.EventReschedule,
					Query:   spec.Name,
					Worker:  ev.WorkerID,
					Attempt: ev.Attempt,
					Attrs: map[string]any{
						"strategy":     strat.Name(),
						"moved_tasks":  movedNow,
						"dead_workers": len(ev.DeadWorkers),
						"replace_ms":   elapsed.Seconds() * 1e3,
					},
				})
			}
			return next, err
		}
	}

	job, err := engine.NewJob(spec.Graph, plan, espec, binding.Factories, jobOpts)
	if err != nil {
		return nil, err
	}
	res, err := job.Run(ctx)
	if err != nil {
		return nil, err
	}

	out := &RecoveryOutcome{
		Query:         spec.Name,
		Strategy:      strat.Name(),
		Transport:     job.Transport(),
		KilledWorker:  kill,
		TasksOnKilled: onKilled,
		PlacementTime: placementTime,
		ReplaceTime:   replaceTime,
		MovedTasks:    moved,
		Recovered:     res.Recoveries > 0,
		Result:        res,
	}
	for _, st := range res.Tasks {
		if res.Elapsed > 0 {
			if f := st.BackpressureT.Seconds() / res.Elapsed.Seconds(); f > out.Backpressure {
				out.Backpressure = f
			}
		}
	}
	res.Metrics.Gauge("controller.placement_seconds").Set(placementTime.Seconds())
	res.Metrics.Gauge("controller.replacement_seconds").Set(replaceTime.Seconds())
	res.Metrics.Counter("controller.tasks_moved").Inc(int64(moved))
	return out, nil
}

// Replace is the reconciliation step: given the dead workers, it restricts
// the cluster view to the survivors (keeping a mapping back to real worker
// indices), re-runs the placement strategy over that view, and remaps the
// resulting plan onto the original cluster. It fails explicitly when the
// survivors cannot host the graph — never returning a silent partial plan.
//
// prev, when non-nil, is the plan that was running when the failure hit. Its
// surviving assignments are translated onto the restricted view and passed to
// warm-capable strategies, so the re-placement search starts from the layout
// the failure left mostly intact (assignments on dead workers are dropped).
func Replace(ctx context.Context, phys *dataflow.PhysicalGraph, c *cluster.Cluster, strat placement.Strategy, u *costmodel.Usage, deadWorkers []int, seed int64, prev *dataflow.Plan) (*dataflow.Plan, error) {
	dead := make(map[int]bool, len(deadWorkers))
	for _, w := range deadWorkers {
		dead[w] = true
	}
	var viewWorkers []cluster.Worker
	var backing []int
	free := 0
	viewOf := make(map[int]int, c.NumWorkers())
	for w := 0; w < c.NumWorkers(); w++ {
		if dead[w] {
			continue
		}
		viewOf[w] = len(viewWorkers)
		viewWorkers = append(viewWorkers, c.Worker(w))
		backing = append(backing, w)
		free += c.Worker(w).Slots
	}
	if len(viewWorkers) == 0 {
		return nil, fmt.Errorf("controller: no surviving workers")
	}
	if free < phys.NumTasks() {
		return nil, fmt.Errorf("controller: survivors have %d slots for %d tasks", free, phys.NumTasks())
	}
	view, err := cluster.New(viewWorkers)
	if err != nil {
		return nil, err
	}
	var vplan *dataflow.Plan
	wp, warmable := strat.(placement.WarmPlacer)
	if warmable && prev != nil {
		vprev := dataflow.NewPlan()
		for _, t := range phys.Tasks() {
			if w, ok := prev.Worker(t); ok {
				if vw, alive := viewOf[w]; alive {
					vprev.Assign(t, vw)
				}
			}
		}
		vplan, err = wp.PlaceWarm(ctx, phys, view, u, seed, vprev)
	} else {
		vplan, err = strat.Place(ctx, phys, view, u, seed)
	}
	if err != nil {
		return nil, fmt.Errorf("controller: re-placement on survivors: %w", err)
	}
	real := dataflow.NewPlan()
	for _, t := range phys.Tasks() {
		vw, ok := vplan.Worker(t)
		if !ok {
			return nil, fmt.Errorf("controller: re-placement left task %v unassigned", t)
		}
		real.Assign(t, backing[vw])
	}
	return real, nil
}

// busiestWorker returns the worker hosting the most tasks (ties to the
// lowest index).
func busiestWorker(plan *dataflow.Plan, numWorkers int) int {
	counts := plan.WorkerCounts(numWorkers)
	best := 0
	for w, n := range counts {
		if n > counts[best] {
			best = w
		}
	}
	return best
}
