package controller

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/ds2"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/telemetry"
)

// RescaleOptions configures a live-rescale run on the engine: the job starts
// under the strategy's placement, and at the scheduled checkpoint epochs the
// engine drains, repartitions the operators' key-groups, and the controller
// re-places the rescaled topology before the job resumes.
type RescaleOptions struct {
	// Seed drives the deterministic event generators and randomized
	// placement strategies.
	Seed int64
	// RecordsPerSource is the number of records each source task generates.
	RecordsPerSource int64
	// SnapshotInterval is the checkpoint barrier interval in records per
	// source task (must be > 0: rescales are epoch-aligned).
	SnapshotInterval int64
	// Rescales schedules the live parallelism changes (at least one).
	Rescales []engine.RescalePlan
	// SourceRate throttles sources to a records-per-second budget, keeping
	// the stream alive long enough for the scheduled epochs to matter.
	SourceRate map[dataflow.OperatorID]float64
	// ChannelCapacity is the engine's per-task inbox bound (0 = default).
	ChannelCapacity int
	// Transport selects the engine's data-plane exchange discipline; see
	// engine.JobOptions.
	Transport   string
	BatchSize   int
	BatchLinger time.Duration
	// DisableFusion turns off operator chaining.
	DisableFusion bool
	// CPUCostScale multiplies the profiled per-record CPU costs (0 = 1).
	CPUCostScale float64
	// Telemetry receives the engine's rescale.start/rescale.complete events
	// and the controller's placement decisions.
	Telemetry *telemetry.Telemetry
}

// RescaleOutcome reports one live-rescale run end to end: initial and
// re-placement decision times, how much of the plan the re-placement
// disturbed, and the engine's full result (downtime, moved state bytes,
// reprocessed records, ...).
type RescaleOutcome struct {
	Query    string
	Strategy string
	// Transport is the data-plane exchange discipline the job ran under.
	Transport string
	// PlacementTime is the initial placement decision time.
	PlacementTime time.Duration
	// ReplaceTime is the total re-placement decision time across rescales
	// (the controller-side share of the rescale downtime).
	ReplaceTime time.Duration
	// MovedTasks counts surviving tasks whose worker changed across all
	// rescale re-placements; freshly created tasks are not "moved".
	MovedTasks int
	// Result is the engine's full job result.
	Result *engine.JobResult
}

// RunRescale deploys a query on the live engine under the given strategy and
// applies the scheduled live rescales. The controller sits on the resume path
// the same way it sits on the recovery path: after the engine drains and
// repartitions state, the placement strategy re-places the rescaled physical
// graph (warm-started from the running plan when the strategy supports it),
// and its decision time is charged to the rescale downtime the engine
// measures. Placement contributions are exported on the result's metrics
// registry as "controller.placement_seconds", "controller.replacement_seconds"
// and "controller.tasks_moved", mirroring RunRecovery.
func RunRescale(ctx context.Context, spec nexmark.QuerySpec, c *cluster.Cluster, strat placement.Strategy, opts RescaleOptions) (*RescaleOutcome, error) {
	if opts.RecordsPerSource <= 0 {
		return nil, fmt.Errorf("controller: RecordsPerSource must be > 0")
	}
	if opts.SnapshotInterval <= 0 {
		return nil, fmt.Errorf("controller: SnapshotInterval must be > 0 (rescales are epoch-aligned)")
	}
	if len(opts.Rescales) == 0 {
		return nil, fmt.Errorf("controller: no rescales scheduled")
	}
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		return nil, err
	}
	u, err := usageFor(spec.Graph, spec.SourceRates)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	plan, err := strat.Place(ctx, phys, c, u, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("controller: initial placement: %w", err)
	}
	placementTime := time.Since(start)
	tracer := opts.Telemetry.Tracer()
	tracer.Emit(telemetry.Event{
		Kind:  telemetry.EventDecision,
		Query: spec.Name,
		Attrs: map[string]any{
			"phase":        "initial-placement",
			"strategy":     strat.Name(),
			"tasks":        phys.NumTasks(),
			"placement_ms": placementTime.Seconds() * 1e3,
		},
	})

	binding, err := nexmark.BindEngine(spec, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.CPUCostScale > 0 && opts.CPUCostScale != 1 {
		for op := range binding.PerRecordCPU {
			binding.PerRecordCPU[op] *= opts.CPUCostScale
		}
	}

	// over accumulates the applied parallelism overrides so each
	// re-placement prices the usage model on the topology actually running.
	var mu sync.Mutex
	var replaceTime time.Duration
	moved := 0
	over := make(map[dataflow.OperatorID]int)

	jobOpts := engine.JobOptions{
		ChannelCapacity:  opts.ChannelCapacity,
		Transport:        opts.Transport,
		BatchSize:        opts.BatchSize,
		BatchLinger:      opts.BatchLinger,
		DisableFusion:    opts.DisableFusion,
		RecordsPerSource: opts.RecordsPerSource,
		SourceRate:       opts.SourceRate,
		PerRecordCPU:     binding.PerRecordCPU,
		Stateful:         binding.Stateful,
		SnapshotInterval: opts.SnapshotInterval,
		Rescales:         opts.Rescales,
		Telemetry:        opts.Telemetry,
		OnRescale: func(ev engine.RescaleEvent, prev *dataflow.Plan, newPhys *dataflow.PhysicalGraph) (*dataflow.Plan, error) {
			t := time.Now()
			mu.Lock()
			over[ev.Op] = ev.NewParallelism
			rg, err := spec.Graph.Rescale(over)
			mu.Unlock()
			if err != nil {
				return nil, fmt.Errorf("controller: rescale usage model: %w", err)
			}
			ru, err := usageFor(rg, spec.SourceRates)
			if err != nil {
				return nil, fmt.Errorf("controller: rescale usage model: %w", err)
			}
			next, err := rescalePlace(ctx, newPhys, c, strat, ru, opts.Seed+ev.Epoch, prev)
			elapsed := time.Since(t)
			if err != nil {
				return nil, err
			}
			movedNow := 0
			for _, task := range newPhys.Tasks() {
				if pw, ok := prev.Worker(task); ok && next.MustWorker(task) != pw {
					movedNow++
				}
			}
			mu.Lock()
			replaceTime += elapsed
			moved += movedNow
			mu.Unlock()
			tracer.Emit(telemetry.Event{
				Kind:  telemetry.EventReschedule,
				Query: spec.Name,
				Op:    string(ev.Op),
				Epoch: ev.Epoch,
				Attrs: map[string]any{
					"strategy":    strat.Name(),
					"from":        ev.OldParallelism,
					"to":          ev.NewParallelism,
					"moved_tasks": movedNow,
					"replace_ms":  elapsed.Seconds() * 1e3,
				},
			})
			return next, nil
		},
	}

	job, err := engine.NewJob(spec.Graph, plan, EngineCluster(c), binding.Factories, jobOpts)
	if err != nil {
		return nil, err
	}
	res, err := job.Run(ctx)
	if err != nil {
		return nil, err
	}

	res.Metrics.Gauge("controller.placement_seconds").Set(placementTime.Seconds())
	res.Metrics.Gauge("controller.replacement_seconds").Set(replaceTime.Seconds())
	res.Metrics.Counter("controller.tasks_moved").Inc(int64(moved))
	return &RescaleOutcome{
		Query:         spec.Name,
		Strategy:      strat.Name(),
		Transport:     job.Transport(),
		PlacementTime: placementTime,
		ReplaceTime:   replaceTime,
		MovedTasks:    moved,
		Result:        res,
	}, nil
}

// rescalePlace re-places the rescaled physical graph on the full cluster,
// warm-starting from the surviving assignments of the running plan when the
// strategy supports it — a rescale should disturb the placement as little as
// the strategy allows, not reshuffle the whole job.
func rescalePlace(ctx context.Context, phys *dataflow.PhysicalGraph, c *cluster.Cluster, strat placement.Strategy, u *costmodel.Usage, seed int64, prev *dataflow.Plan) (*dataflow.Plan, error) {
	if free := c.TotalSlots(); free < phys.NumTasks() {
		return nil, fmt.Errorf("controller: cluster has %d slots for %d rescaled tasks", free, phys.NumTasks())
	}
	if wp, ok := strat.(placement.WarmPlacer); ok && prev != nil {
		vprev := dataflow.NewPlan()
		for _, t := range phys.Tasks() {
			if w, ok := prev.Worker(t); ok {
				vprev.Assign(t, w)
			}
		}
		next, err := wp.PlaceWarm(ctx, phys, c, u, seed, vprev)
		if err != nil {
			return nil, fmt.Errorf("controller: rescale re-placement: %w", err)
		}
		return next, nil
	}
	next, err := strat.Place(ctx, phys, c, u, seed)
	if err != nil {
		return nil, fmt.Errorf("controller: rescale re-placement: %w", err)
	}
	return next, nil
}

// PlansFromDecision turns a DS2 scaling decision into the engine's rescale
// schedule: one plan per operator whose recommended parallelism differs from
// the graph's current, all aligned to the same checkpoint epoch. Sources
// are skipped — their count fixes the input partitioning, so a live rescale
// cannot apply that part of the decision. Operators are ordered
// deterministically so the same decision always yields the same schedule.
func PlansFromDecision(d *ds2.Decision, g *dataflow.LogicalGraph, atEpoch int64) []engine.RescalePlan {
	if d == nil || !d.Changed {
		return nil
	}
	ops := make([]dataflow.OperatorID, 0, len(d.Parallelism))
	for op := range d.Parallelism {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	var plans []engine.RescalePlan
	for _, op := range ops {
		cur := g.Operator(op)
		if cur == nil || len(g.Upstream(op)) == 0 {
			continue
		}
		if p := d.Parallelism[op]; p > 0 && p != cur.Parallelism {
			plans = append(plans, engine.RescalePlan{Op: op, Parallelism: p, AtEpoch: atEpoch})
		}
	}
	return plans
}
