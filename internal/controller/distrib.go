package controller

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"capsys/internal/clock"
	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/nexmark"
	"capsys/internal/telemetry"
)

// This file is the control plane of the distributed runtime: a Coordinator
// process deploys one engine attempt per worker process and supervises the
// run, and JoinCluster is the worker-side loop. Control traffic uses the
// engine's length-prefixed frame codec over one TCP connection per worker;
// the data plane (records, barriers, credits) flows worker-to-worker over
// the engine's network transport and never touches the coordinator.
//
// Per attempt the protocol is two-phase:
//
//	coordinator -> worker  DEPLOY  {spec: query, plan, restore snapshots}
//	worker -> coordinator  READY   {bound data-plane address}
//	coordinator -> worker  START   {all peers' data addresses}
//	worker -> coordinator  EPOCH_START | SNAPSHOT | HEARTBEAT | PEERDOWN ...
//	worker -> coordinator  DONE    {final report}
//
// Checkpoint snapshots stream to the coordinator as they are taken, so the
// coordinator's SnapshotStore plays the role of durable remote checkpoint
// storage: state survives any worker's death. Failure detection is
// control-plane liveness — a broken worker connection or missed heartbeats
// — and recovery aborts the survivors, re-places the dead workers' tasks,
// and redeploys everything from the last globally complete epoch, exactly
// mirroring the in-process engine's kill-recovery path.

// TaskAssignment is one task-to-worker placement in wire-safe form.
type TaskAssignment struct {
	Task   engine.WireTaskID
	Worker int
}

// AssignmentsOf flattens a plan into wire-safe assignments (deterministic
// order).
func AssignmentsOf(phys *dataflow.PhysicalGraph, plan *dataflow.Plan) ([]TaskAssignment, error) {
	var out []TaskAssignment
	for _, t := range phys.Tasks() {
		w, ok := plan.Worker(t)
		if !ok {
			return nil, fmt.Errorf("controller: task %v unassigned", t)
		}
		out = append(out, TaskAssignment{
			Task:   engine.WireTaskID{Op: string(t.Op), Index: t.Index},
			Worker: w,
		})
	}
	return out, nil
}

// DeploySpec is everything a worker process needs to build its share of a
// job: the query identity and options (so every process derives the same
// deterministic graph, factories and generators), the full cluster spec and
// plan (so the cross-worker channel census agrees across processes), and
// the attempt-specific restore state.
type DeploySpec struct {
	Query            string
	Seed             int64
	RecordsPerSource int64
	SnapshotInterval int64
	ChannelCapacity  int
	BatchSize        int
	BatchLinger      time.Duration
	DisableFusion    bool
	CPUCostScale     float64
	Workers          []engine.WorkerSpec
	Assign           []TaskAssignment
	// KeyGroups is the job's key-group count, pinned by the coordinator so
	// every worker (and every attempt, across rescales) routes keyed records
	// and partitions keyed state identically. Zero lets each worker resolve
	// the engine default — only safe when no rescale will ever run.
	KeyGroups int
	// Rescaled carries per-operator parallelism overrides from applied live
	// rescales; workers rebuild the query graph with these parallelisms, so
	// a redeploy after a rescale derives the rescaled topology everywhere.
	Rescaled []OpParallelism

	// Attempt-specific, filled by the coordinator per deploy.
	Attempt      int
	Local        int
	RestoreEpoch int64
	Snapshots    []engine.WireSnapshot
}

// OpParallelism is one operator's parallelism override in wire-safe form.
type OpParallelism struct {
	Op          string
	Parallelism int
}

// Plan reconstructs the dataflow plan from the wire-safe assignments.
func (d DeploySpec) Plan() *dataflow.Plan {
	p := dataflow.NewPlanSized(len(d.Assign))
	for _, a := range d.Assign {
		p.Assign(dataflow.TaskID{Op: dataflow.OperatorID(a.Task.Op), Index: a.Task.Index}, a.Worker)
	}
	return p
}

// JobBuilder builds the worker-local engine job for one deploy. The job
// must use the network transport; its graph, factories and options must be
// a pure function of the spec — every worker (and every attempt) derives
// identical wiring from it.
type JobBuilder func(spec DeploySpec) (*engine.Job, error)

// NexmarkBuilder resolves DeploySpec.Query against the built-in benchmark
// queries — the standard builder for caplive worker processes.
func NexmarkBuilder() JobBuilder {
	return NexmarkBuilderWith(nil)
}

// NexmarkBuilderWith is NexmarkBuilder with the worker's telemetry hub
// wired into every built job, so each attempt's engine instrumentation
// (wire counters, latency histograms, saturation gauges, tracer events)
// lands in the hub the heartbeat sampler and trace feed read from.
func NexmarkBuilderWith(tel *telemetry.Telemetry) JobBuilder {
	return func(spec DeploySpec) (*engine.Job, error) {
		q, err := nexmark.ByName(spec.Query)
		if err != nil {
			return nil, err
		}
		binding, err := nexmark.BindEngine(q, spec.Seed)
		if err != nil {
			return nil, err
		}
		if spec.CPUCostScale > 0 && spec.CPUCostScale != 1 {
			for op := range binding.PerRecordCPU {
				binding.PerRecordCPU[op] *= spec.CPUCostScale
			}
		}
		graph := q.Graph
		if len(spec.Rescaled) > 0 {
			over := make(map[dataflow.OperatorID]int, len(spec.Rescaled))
			for _, r := range spec.Rescaled {
				over[dataflow.OperatorID(r.Op)] = r.Parallelism
			}
			graph, err = graph.Rescale(over)
			if err != nil {
				return nil, fmt.Errorf("controller: applying rescale overrides: %w", err)
			}
		}
		opts := engine.JobOptions{
			RecordsPerSource: spec.RecordsPerSource,
			SnapshotInterval: spec.SnapshotInterval,
			ChannelCapacity:  spec.ChannelCapacity,
			Transport:        engine.TransportNetwork,
			BatchSize:        spec.BatchSize,
			BatchLinger:      spec.BatchLinger,
			DisableFusion:    spec.DisableFusion,
			Stateful:         binding.Stateful,
			PerRecordCPU:     binding.PerRecordCPU,
			KeyGroups:        spec.KeyGroups,
			Telemetry:        tel,
		}
		return engine.NewJob(graph, spec.Plan(), engine.ClusterSpec{Workers: spec.Workers}, binding.Factories, opts)
	}
}

// Control-plane frame payloads.
type (
	wireJoin    struct{ Proto int }
	wireWelcome struct{ Worker int }
	wireReady   struct {
		Attempt int
		Addr    string
	}
	wireStart struct {
		Attempt int
		Peers   map[int]string
	}
	wireEpoch struct {
		Attempt int
		Epoch   int64
	}
	wireSnap struct {
		Attempt int
		Snap    engine.WireSnapshot
	}
	wireReport struct{ Report *engine.WorkerReport }
	wirePeer   struct {
		Attempt int
		Peer    int
	}
)

// distProtoVersion 2 grew the observability plane: HEARTBEAT frames carry
// an optional wireHeartbeat stats payload and workers may send TRACE
// frames. Version 3 added live rescaling: DEPLOY specs carry the pinned
// key-group count and per-operator parallelism overrides, which an older
// worker would silently ignore and build the wrong topology — so the
// version gates the join handshake.
const distProtoVersion = 3

// errEncodePayload marks a send that failed locally while gob-encoding the
// body — the data was unencodable or too large (MaxFramePayload), which
// says nothing about the peer's health. Callers deciding recovery must
// check for it: treating an encode failure as a connection error would
// "recover" against a perfectly healthy worker, and since the oversized
// data persists, every retry would kill another worker until the whole
// cluster is declared dead.
var errEncodePayload = errors.New("controller: encode frame payload")

// connWriter serializes frame writes on one control connection.
type connWriter struct {
	mu sync.Mutex
	c  net.Conn
}

func (w *connWriter) send(typ byte, body any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = engine.EncodePayload(body)
		if err != nil {
			return fmt.Errorf("%w: %v", errEncodePayload, err)
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return engine.WriteFrame(w.c, engine.Frame{Type: typ, Payload: payload})
}

// ---------------------------------------------------------------------------
// coordinator

// CoordinatorOptions tunes supervision.
type CoordinatorOptions struct {
	// HeartbeatTimeout declares a worker dead when no frame (heartbeats
	// included) arrives for this long (default 5s). Connection errors are
	// detected immediately regardless.
	HeartbeatTimeout time.Duration
	// StopTimeout bounds how long recovery waits for an aborted worker's
	// STOPPED report before giving up on it (default 10s).
	StopTimeout time.Duration
	// Replan re-places the dead workers' tasks onto survivors. Nil means
	// worker loss is fatal.
	Replan func(dead []int, attempt int) ([]TaskAssignment, error)
	// Rescales schedules live parallelism changes: each plan triggers at the
	// first globally complete checkpoint epoch >= its AtEpoch, draining the
	// cluster to that epoch, repartitioning the operator's key-groups in the
	// coordinator's snapshot store, and redeploying every worker on the
	// rescaled topology. More can be added at runtime via ScheduleRescale.
	Rescales []engine.RescalePlan
	// RescaleAssign re-places tasks for an applied rescale (the previous
	// assignments still name the old task set; the returned set must cover
	// the rescaled one). Nil keeps surviving tasks where they are and packs
	// new tasks onto the lowest-index live workers with free slots.
	RescaleAssign func(ev engine.RescaleEvent, prev []TaskAssignment) ([]TaskAssignment, error)
	// Logf, when set, receives progress lines ("checkpoint: epoch 3
	// complete", "worker 1 dead: ...").
	Logf func(format string, args ...any)
	// Telemetry, when set, turns the coordinator into the cluster's
	// aggregation point: worker heartbeat stats merge into its registry
	// (see clusterstats.go), worker trace batches merge into its tracer,
	// and ClusterHandler serves the combined view. Nil disables
	// aggregation; heartbeats degrade to pure liveness.
	Telemetry *telemetry.Telemetry
	// Now is the liveness clock (default the system clock). Tests inject
	// Step/Fixed clocks to drive heartbeat-timeout decisions
	// deterministically; tickers and deadlines stay on real time.
	Now clock.Clock
}

// Coordinator supervises one distributed job across worker processes.
type Coordinator struct {
	ln    net.Listener
	spec  DeploySpec
	n     int
	opts  CoordinatorOptions
	store *engine.SnapshotStore
	clk   clock.Clock
	agg   clusterAgg

	// connMu orders WaitJoined's appends to conns against connSnapshot
	// reads from HTTP handlers; once the cluster is complete the slice is
	// append-free and the supervision loop reads it directly.
	connMu sync.Mutex
	conns  []*coordConn
	events chan coordEvent

	// curAttempt is the attempt currently deployed (0 before the first),
	// exported on /healthz.
	curAttempt atomic.Int64

	// dpRestarts counts attempts restarted for data-plane-only failures
	// (PEERDOWN reports whose accused peer was still control-plane live);
	// bounded by maxDataPlaneRestarts before escalating to a worker death.
	dpRestarts int

	// rescaleMu guards the pending rescale queue: ScheduleRescale appends
	// from any goroutine; the supervision loop consumes.
	rescaleMu      sync.Mutex
	pendingRescale []engine.RescalePlan
	// rescaledAt/lastRescale carry one applied rescale across the redeploy:
	// downtime ends (and rescale.complete fires) when the rescaled attempt
	// starts. Only the supervision loop touches them.
	rescaledAt  time.Time
	lastRescale *engine.RescaleEvent
}

type coordConn struct {
	w         *connWriter
	c         net.Conn
	addr      string       // remote address, for the /workers roster
	lastSeen  atomic.Int64 // unix nanos of the last frame received
	alive     atomic.Bool  // false once the supervision loop declares it dead
	lastEpoch atomic.Int64 // last checkpoint epoch this worker started
}

// coordEvent is one worker's frame (or terminal read error) as seen by the
// supervision loop.
type coordEvent struct {
	worker int
	frame  engine.Frame
	err    error
}

// NewCoordinator binds the control listener for a cluster of `workers`
// worker processes. spec's attempt-specific fields are ignored; the
// coordinator fills them per deploy.
func NewCoordinator(listen string, spec DeploySpec, workers int, opts CoordinatorOptions) (*Coordinator, error) {
	if workers <= 0 || workers > len(spec.Workers) {
		return nil, fmt.Errorf("controller: %d worker processes for a %d-worker spec", workers, len(spec.Workers))
	}
	if len(spec.Assign) == 0 {
		return nil, fmt.Errorf("controller: deploy spec has no task assignments")
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 5 * time.Second
	}
	if opts.StopTimeout <= 0 {
		opts.StopTimeout = 10 * time.Second
	}
	// Pin the key-group count so every worker, every attempt, and the
	// coordinator's own repartitioning agree on how keyed state and keyed
	// routing partition — before and after any rescale. The resolution
	// mirrors engine.NewJob's default so a pre-rescale cluster is
	// byte-compatible with one that never pins.
	if spec.KeyGroups == 0 {
		spec.KeyGroups = engine.DefaultKeyGroups
		for _, p := range opParallelisms(spec.Assign) {
			if p > spec.KeyGroups {
				spec.KeyGroups = p
			}
		}
	}
	co := &Coordinator{
		ln:     nil,
		spec:   spec,
		n:      workers,
		opts:   opts,
		store:  engine.NewSnapshotStore(len(spec.Assign)),
		clk:    opts.Now.OrSystem(),
		agg:    clusterAgg{tel: opts.Telemetry},
		events: make(chan coordEvent, 64),
	}
	for _, p := range opts.Rescales {
		if err := co.ScheduleRescale(p); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	co.ln = ln
	return co, nil
}

// opParallelisms derives each operator's parallelism from the task
// assignments (task indices are dense, so the count is the parallelism).
func opParallelisms(assign []TaskAssignment) map[string]int {
	out := make(map[string]int)
	for _, a := range assign {
		out[a.Task.Op]++
	}
	return out
}

// ScheduleRescale queues a live parallelism change; it triggers at the first
// globally complete checkpoint epoch >= AtEpoch. Safe from any goroutine
// while the coordinator runs.
func (co *Coordinator) ScheduleRescale(p engine.RescalePlan) error {
	if co.spec.SnapshotInterval <= 0 {
		return fmt.Errorf("controller: rescale needs checkpoints; set SnapshotInterval > 0")
	}
	ps := opParallelisms(co.spec.Assign)
	if ps[string(p.Op)] == 0 {
		return fmt.Errorf("controller: rescale of unknown operator %q", p.Op)
	}
	if p.Parallelism <= 0 {
		return fmt.Errorf("controller: rescale of %q to non-positive parallelism %d", p.Op, p.Parallelism)
	}
	if p.Parallelism > co.spec.KeyGroups {
		return fmt.Errorf("controller: rescale of %q to %d exceeds %d key-groups", p.Op, p.Parallelism, co.spec.KeyGroups)
	}
	if p.AtEpoch < 0 {
		return fmt.Errorf("controller: rescale of %q at negative epoch %d", p.Op, p.AtEpoch)
	}
	co.rescaleMu.Lock()
	co.pendingRescale = append(co.pendingRescale, p)
	co.rescaleMu.Unlock()
	return nil
}

// dueRescale returns the first pending plan due at the given complete epoch
// without removing it — the plan stays pending until applied, so a worker
// death racing the drain simply re-triggers it at the next complete epoch.
func (co *Coordinator) dueRescale(epoch int64) *engine.RescalePlan {
	co.rescaleMu.Lock()
	defer co.rescaleMu.Unlock()
	for i := range co.pendingRescale {
		if epoch >= co.pendingRescale[i].AtEpoch {
			p := co.pendingRescale[i]
			return &p
		}
	}
	return nil
}

func (co *Coordinator) dropRescale(p *engine.RescalePlan) {
	co.rescaleMu.Lock()
	defer co.rescaleMu.Unlock()
	for i := range co.pendingRescale {
		if co.pendingRescale[i] == *p {
			co.pendingRescale = append(co.pendingRescale[:i], co.pendingRescale[i+1:]...)
			return
		}
	}
}

// Addr is the bound control-plane address workers join.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

func (co *Coordinator) logf(format string, args ...any) {
	if co.opts.Logf != nil {
		co.opts.Logf(format, args...)
	}
}

// workerID renders worker w's cluster-spec ID ("w0".."wN" by caplive
// convention) for aggregation keys and trace provenance.
func (co *Coordinator) workerID(w int) string {
	if w >= 0 && w < len(co.spec.Workers) {
		return co.spec.Workers[w].ID
	}
	return fmt.Sprintf("w%d", w)
}

// trace emits one coordinator-originated event into the cluster timeline.
func (co *Coordinator) trace(ev telemetry.Event) {
	if co.opts.Telemetry == nil {
		return
	}
	ev.Src = "coord"
	co.opts.Telemetry.Tracer().Emit(ev)
}

// WaitJoined accepts worker connections until the cluster is complete.
// Workers are assigned indices in join order.
func (co *Coordinator) WaitJoined(ctx context.Context) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			co.ln.Close()
		case <-done:
		}
	}()
	for len(co.conns) < co.n {
		c, err := co.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		f, err := engine.ReadFrame(c)
		if err != nil || f.Type != engine.FrameHello {
			c.Close()
			continue
		}
		var join wireJoin
		if err := engine.DecodePayload(f.Payload, &join); err != nil || join.Proto != distProtoVersion {
			c.Close()
			continue
		}
		w := len(co.conns)
		cc := &coordConn{w: &connWriter{c: c}, c: c, addr: c.RemoteAddr().String()}
		cc.lastSeen.Store(co.clk().UnixNano())
		cc.alive.Store(true)
		if err := cc.w.send(engine.FrameWelcome, wireWelcome{Worker: w}); err != nil {
			c.Close()
			continue
		}
		co.connMu.Lock()
		co.conns = append(co.conns, cc)
		co.connMu.Unlock()
		go co.readLoop(w, cc)
		co.logf("worker %d joined from %s", w, c.RemoteAddr())
	}
	return nil
}

// readLoop forwards one worker's frames to the supervision loop. The
// observability plane is intercepted here, off the supervision path:
// heartbeat stat payloads and trace batches merge into the coordinator hub
// as they arrive, so /metrics and the cluster timeline are live mid-attempt
// without the supervision loop in the way.
func (co *Coordinator) readLoop(w int, cc *coordConn) {
	worker := co.workerID(w)
	for {
		f, err := engine.ReadFrame(cc.c)
		if err != nil {
			co.events <- coordEvent{worker: w, err: err}
			return
		}
		cc.lastSeen.Store(co.clk().UnixNano())
		switch f.Type {
		case engine.FrameHeartbeat:
			if co.agg.enabled() && len(f.Payload) > 0 {
				var hb wireHeartbeat
				// Undecodable stats degrade the frame to pure liveness.
				if err := engine.DecodePayload(f.Payload, &hb); err == nil {
					co.agg.applyStats(worker, hb.Stats)
				}
			}
		case engine.FrameTrace:
			var wt wireTrace
			if err := engine.DecodePayload(f.Payload, &wt); err == nil {
				co.agg.applyTrace(worker, &wt)
			}
			continue // trace batches never reach the supervision loop
		}
		co.events <- coordEvent{worker: w, frame: f}
	}
}

// Shutdown releases every worker's join loop and closes the control plane.
func (co *Coordinator) Shutdown() {
	for _, cc := range co.conns {
		cc.w.send(engine.FrameShutdown, nil)
		cc.c.Close()
	}
	co.ln.Close()
}

// nextEvent waits for a worker event, a heartbeat-timeout death, or ctx.
func (co *Coordinator) nextEvent(ctx context.Context, alive map[int]bool) (coordEvent, error) {
	tick := time.NewTicker(co.opts.HeartbeatTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case ev := <-co.events:
			return ev, nil
		case <-tick.C:
			if w, stale := co.staleWorker(alive); stale {
				return coordEvent{worker: w, err: fmt.Errorf("heartbeat timeout (%v)", co.opts.HeartbeatTimeout)}, nil
			}
		case <-ctx.Done():
			return coordEvent{}, ctx.Err()
		}
	}
}

// staleWorker reports a live worker whose last frame is older than the
// heartbeat timeout as judged by the injected clock — the liveness
// decision, factored out of nextEvent so clock-driven tests can exercise
// it without real tickers.
func (co *Coordinator) staleWorker(alive map[int]bool) (int, bool) {
	cut := co.clk().Add(-co.opts.HeartbeatTimeout).UnixNano()
	for w := range alive {
		if co.conns[w].lastSeen.Load() < cut {
			return w, true
		}
	}
	return -1, false
}

// Run drives the job to completion across the joined workers, recovering
// from worker deaths when Replan is set, and assembles the distributed
// JobResult from the final attempt's reports.
func (co *Coordinator) Run(ctx context.Context) (*engine.JobResult, error) {
	if len(co.conns) < co.n {
		return nil, fmt.Errorf("controller: Run before WaitJoined completed (%d of %d workers)", len(co.conns), co.n)
	}
	start := co.clk()
	assign := co.spec.Assign
	alive := make(map[int]bool, co.n)
	for w := 0; w < co.n; w++ {
		alive[w] = true
	}
	var agg engine.DistAgg
	var restore int64
	var failedAt time.Time

	for attempt := 1; ; attempt++ {
		res, err := co.runAttempt(ctx, start, &agg, alive, &assign, &restore, &failedAt, attempt)
		if err == errRetryAttempt {
			continue
		}
		return res, err
	}
}

// runAttempt deploys and supervises one attempt. errRetryAttempt means a
// worker died, recovery succeeded, and Run should redeploy.
func (co *Coordinator) runAttempt(ctx context.Context, start time.Time, agg *engine.DistAgg,
	alive map[int]bool, assign *[]TaskAssignment, restore *int64, failedAt *time.Time,
	attempt int) (*engine.JobResult, error) {
	{
		co.curAttempt.Store(int64(attempt))
		taskWorker := make(map[engine.WireTaskID]int, len(*assign))
		for _, a := range *assign {
			taskWorker[a.Task] = a.Worker
		}
		restoreSnaps := co.store.EpochSnapshots(*restore)

		// Phase 1: deploy, gather every live worker's data address.
		for w := range alive {
			d := co.spec
			d.Assign = *assign
			d.Attempt = attempt
			d.Local = w
			d.RestoreEpoch = *restore
			for _, s := range restoreSnaps {
				if taskWorker[s.Task] == w {
					d.Snapshots = append(d.Snapshots, s)
				}
			}
			if err := co.conns[w].w.send(engine.FrameDeploy, d); err != nil {
				if errors.Is(err, errEncodePayload) {
					// Local encode failure (e.g. the restore snapshot set
					// outgrew MaxFramePayload): the worker is healthy, and
					// the oversized data would survive any redeploy. Fail
					// the run with the real cause.
					return nil, fmt.Errorf("controller: deploy for worker %d: %w", w, err)
				}
				return co.recover(ctx, start, agg, alive, assign, restore, failedAt, attempt, w, err)
			}
		}
		peers := make(map[int]string, len(alive))
		for len(peers) < len(alive) {
			ev, err := co.nextEvent(ctx, alive)
			if err != nil {
				return nil, err
			}
			if !alive[ev.worker] {
				continue
			}
			if ev.err != nil {
				return co.recover(ctx, start, agg, alive, assign, restore, failedAt, attempt, ev.worker, ev.err)
			}
			switch ev.frame.Type {
			case engine.FrameReady:
				var r wireReady
				if err := engine.DecodePayload(ev.frame.Payload, &r); err != nil {
					return nil, fmt.Errorf("controller: bad READY from worker %d: %w", ev.worker, err)
				}
				if r.Attempt == attempt {
					peers[ev.worker] = r.Addr
				}
			case engine.FrameHeartbeat:
			default:
				// Stale events from the aborted attempt (snapshots, late
				// DONE/STOPPED reports) are dropped.
			}
		}

		// Phase 2: start. Downtime ends when the restarted attempt begins.
		if !failedAt.IsZero() {
			agg.Downtime += co.clk.Since(*failedAt)
			*failedAt = time.Time{}
		}
		if !co.rescaledAt.IsZero() {
			// Rescale downtime likewise ends once the rescaled deployment is
			// about to start.
			d := co.clk.Since(co.rescaledAt)
			agg.RescaleDowntime += d
			co.rescaledAt = time.Time{}
			if ev := co.lastRescale; ev != nil {
				co.trace(telemetry.Event{Kind: telemetry.EventRescaleComplete, Op: string(ev.Op), Epoch: ev.Epoch, Attempt: attempt,
					Attrs: map[string]any{"from": ev.OldParallelism, "to": ev.NewParallelism, "downtime_ms": d.Seconds() * 1e3}})
				co.lastRescale = nil
			}
		}
		for w := range alive {
			if err := co.conns[w].w.send(engine.FrameStart, wireStart{Attempt: attempt, Peers: peers}); err != nil {
				if errors.Is(err, errEncodePayload) {
					return nil, fmt.Errorf("controller: start for worker %d: %w", w, err)
				}
				return co.recover(ctx, start, agg, alive, assign, restore, failedAt, attempt, w, err)
			}
		}

		// Phase 3: supervise until every live worker reports DONE.
		reports := make(map[int]*engine.WorkerReport, len(alive))
		for len(reports) < len(alive) {
			ev, err := co.nextEvent(ctx, alive)
			if err != nil {
				return nil, err
			}
			if !alive[ev.worker] {
				continue
			}
			if ev.err != nil {
				// A connection error after DONE is an exiting worker, not a
				// failure of the attempt.
				if reports[ev.worker] != nil {
					continue
				}
				return co.recover(ctx, start, agg, alive, assign, restore, failedAt, attempt, ev.worker, ev.err)
			}
			switch ev.frame.Type {
			case engine.FrameSnapshot:
				var s wireSnap
				if err := engine.DecodePayload(ev.frame.Payload, &s); err == nil && s.Attempt == attempt {
					if done := co.store.Record(s.Snap); done > 0 {
						co.logf("checkpoint: epoch %d complete (%d snapshots)", done, co.store.Taken())
						co.trace(telemetry.Event{Kind: telemetry.EventCheckpointComplete, Epoch: done, Attempt: attempt,
							Attrs: map[string]any{"snapshots": co.store.Taken()}})
						if p := co.dueRescale(done); p != nil {
							return co.rescaleLive(ctx, start, agg, alive, assign, restore, failedAt, attempt, p)
						}
					}
				}
			case engine.FrameEpochStart:
				var e wireEpoch
				if err := engine.DecodePayload(ev.frame.Payload, &e); err == nil && e.Attempt == attempt {
					co.conns[ev.worker].lastEpoch.Store(e.Epoch)
					co.logf("epoch %d started", e.Epoch)
					co.trace(telemetry.Event{Kind: telemetry.EventCheckpointStart, Epoch: e.Epoch, Attempt: attempt})
				}
			case engine.FramePeerDown:
				var p wirePeer
				if err := engine.DecodePayload(ev.frame.Payload, &p); err == nil && p.Attempt == attempt {
					if !alive[p.Peer] {
						// Already known dead: recovery via its control-plane
						// liveness is in motion, nothing new to act on.
						co.logf("worker %d reports peer %d unreachable (already dead)", ev.worker, p.Peer)
						continue
					}
					// The accused peer is still control-plane live: the
					// failure is data-plane-only (TCP reset between live
					// workers, a severed shared connection). Heartbeats will
					// never detect it, so act on the report: restart the
					// attempt, keeping every worker, from the last complete
					// epoch.
					return co.recoverDataPlane(ctx, start, agg, alive, assign, restore, failedAt, attempt, ev.worker, p.Peer)
				}
			case engine.FrameDone:
				var r wireReport
				if err := engine.DecodePayload(ev.frame.Payload, &r); err != nil || r.Report == nil {
					return nil, fmt.Errorf("controller: bad DONE from worker %d: %v", ev.worker, err)
				}
				if r.Report.Attempt == attempt {
					reports[ev.worker] = r.Report
				}
			case engine.FrameHeartbeat, engine.FrameStopped:
			}
		}

		agg.Elapsed = co.clk.Since(start)
		agg.RestoredEpoch = *restore
		agg.Snapshots = co.store.Taken()
		all := make([]*engine.WorkerReport, 0, len(reports))
		for _, r := range reports {
			all = append(all, r)
		}
		co.trace(telemetry.Event{Kind: telemetry.EventJobComplete, Attempt: attempt,
			Attrs: map[string]any{"recoveries": agg.Recoveries, "snapshots": agg.Snapshots}})
		return engine.AssembleDistResult(all, *agg), nil
	}
}

// recover handles one worker death mid-attempt: abort the survivors,
// collect their progress, account reprocessing, re-place the dead workers'
// tasks and hand control back to Run's attempt loop (the non-nil error
// return is the unrecoverable path).
func (co *Coordinator) recover(ctx context.Context, start time.Time, agg *engine.DistAgg,
	alive map[int]bool, assign *[]TaskAssignment, restore *int64, failedAt *time.Time,
	attempt, deadWorker int, cause error) (*engine.JobResult, error) {
	*failedAt = co.clk()
	co.logf("worker %d dead (attempt %d): %v", deadWorker, attempt, cause)
	delete(alive, deadWorker)
	co.conns[deadWorker].alive.Store(false)
	co.conns[deadWorker].c.Close()
	co.trace(telemetry.Event{Kind: telemetry.EventRecoveryStart, Worker: co.workerID(deadWorker), Attempt: attempt,
		Attrs: map[string]any{"cause": cause.Error()}})
	agg.Faults = append(agg.Faults, engine.FaultRecord{
		Kind:      engine.FaultKillWorker,
		Worker:    deadWorker,
		Recovered: co.opts.Replan != nil && len(alive) > 0,
		At:        co.clk.Since(start),
	})
	if co.opts.Replan == nil {
		return nil, fmt.Errorf("controller: worker %d died and no Replan is configured: %w", deadWorker, cause)
	}
	if len(alive) == 0 {
		return nil, fmt.Errorf("controller: all workers dead after worker %d: %w", deadWorker, cause)
	}
	agg.Recoveries++

	stopped, err := co.abortAndCollect(ctx, start, agg, alive, attempt)
	if err != nil {
		return nil, err
	}
	if len(alive) == 0 {
		return nil, fmt.Errorf("controller: all workers dead during recovery: %w", cause)
	}

	prevRestore := *restore
	*restore = co.store.LastComplete()
	agg.Reprocessed += reprocessedSince(stopped, co.store, prevRestore, *restore)

	next, err := co.opts.Replan(deadWorkers(co.n, alive), attempt+1)
	if err != nil {
		return nil, fmt.Errorf("controller: re-placement after worker %d died: %w", deadWorker, err)
	}
	if err := validateAssign(next, *assign, alive); err != nil {
		return nil, err
	}
	*assign = next
	co.logf("recovery: restarting attempt %d from epoch %d on %d survivors", attempt+1, *restore, len(alive))
	co.trace(telemetry.Event{Kind: telemetry.EventRecoveryRestart, Epoch: *restore, Attempt: attempt + 1,
		Attrs: map[string]any{"survivors": len(alive)}})
	return nil, errRetryAttempt
}

// maxDataPlaneRestarts bounds how many data-plane-only restarts a run may
// take before a PEERDOWN report escalates to declaring the accused peer
// dead — without a bound, a persistently broken link between two
// control-plane-live workers would restart the job forever.
const maxDataPlaneRestarts = 3

// recoverDataPlane handles a PEERDOWN report whose accused peer is still
// control-plane live: the data plane between two live workers failed, a
// condition heartbeats can never surface. Neither endpoint is provably at
// fault, so the attempt restarts from the last complete epoch with every
// worker kept; once the restart budget is exhausted the accused peer is
// treated as dead and the normal dead-worker recovery runs.
func (co *Coordinator) recoverDataPlane(ctx context.Context, start time.Time, agg *engine.DistAgg,
	alive map[int]bool, assign *[]TaskAssignment, restore *int64, failedAt *time.Time,
	attempt, reporter, accused int) (*engine.JobResult, error) {
	if co.dpRestarts >= maxDataPlaneRestarts {
		return co.recover(ctx, start, agg, alive, assign, restore, failedAt, attempt, accused,
			fmt.Errorf("persistent data-plane failure: worker %d reports it unreachable after %d restarts", reporter, co.dpRestarts))
	}
	co.dpRestarts++
	*failedAt = co.clk()
	co.logf("worker %d cannot reach live peer %d (attempt %d): restarting all workers (data-plane restart %d/%d)",
		reporter, accused, attempt, co.dpRestarts, maxDataPlaneRestarts)
	co.trace(telemetry.Event{Kind: telemetry.EventPeerDown, Worker: co.workerID(accused), Attempt: attempt,
		Attrs: map[string]any{"reporter": reporter, "accused": accused, "restart": co.dpRestarts}})
	agg.Recoveries++

	stopped, err := co.abortAndCollect(ctx, start, agg, alive, attempt)
	if err != nil {
		return nil, err
	}
	if len(alive) == 0 {
		return nil, fmt.Errorf("controller: all workers dead during data-plane restart of attempt %d", attempt)
	}

	prevRestore := *restore
	*restore = co.store.LastComplete()
	agg.Reprocessed += reprocessedSince(stopped, co.store, prevRestore, *restore)

	// A worker that died while stopping turns this into an ordinary
	// dead-worker recovery: its tasks must move, which needs Replan. That
	// includes the common SIGKILL race where a peer's data-plane report
	// arrives before control-plane liveness notices the death — emit the
	// recovery.start the control-plane path would have, so the timeline
	// records the death recovery whichever detector fired first.
	if dead := deadWorkers(co.n, alive); len(dead) > 0 {
		if co.opts.Replan == nil {
			return nil, fmt.Errorf("controller: worker %d died during data-plane restart and no Replan is configured", dead[0])
		}
		for _, d := range dead {
			co.trace(telemetry.Event{Kind: telemetry.EventRecoveryStart, Worker: co.workerID(d), Attempt: attempt,
				Attrs: map[string]any{"cause": "worker died during data-plane restart"}})
		}
		next, err := co.opts.Replan(dead, attempt+1)
		if err != nil {
			return nil, fmt.Errorf("controller: re-placement during data-plane restart: %w", err)
		}
		if err := validateAssign(next, *assign, alive); err != nil {
			return nil, err
		}
		*assign = next
	}
	co.logf("recovery: restarting attempt %d from epoch %d after data-plane failure", attempt+1, *restore)
	co.trace(telemetry.Event{Kind: telemetry.EventRecoveryRestart, Epoch: *restore, Attempt: attempt + 1,
		Attrs: map[string]any{"survivors": len(alive), "data_plane": true}})
	return nil, errRetryAttempt
}

// rescaleLive executes one scheduled rescale after a complete epoch
// triggered it: abort every worker (the drain — their state as of the epoch
// is already in the store), repartition the operator's key-groups at the
// newest complete epoch, rewrite the deploy spec and assignments for the new
// parallelism, and redeploy. Mirrors the in-process engine's
// checkpoint→repartition→resume protocol with the coordinator's store as
// the durable state.
func (co *Coordinator) rescaleLive(ctx context.Context, start time.Time, agg *engine.DistAgg,
	alive map[int]bool, assign *[]TaskAssignment, restore *int64, failedAt *time.Time,
	attempt int, p *engine.RescalePlan) (*engine.JobResult, error) {
	co.rescaledAt = co.clk()
	oldP := opParallelisms(*assign)[string(p.Op)]
	co.logf("rescale: draining %q %d→%d (attempt %d)", p.Op, oldP, p.Parallelism, attempt)
	stopped, err := co.abortAndCollect(ctx, start, agg, alive, attempt)
	if err != nil {
		return nil, err
	}
	if dead := deadWorkers(co.n, alive); len(dead) > 0 {
		// A worker died while draining: the fault wins. Recovery proceeds as
		// for any death; the rescale stays pending and re-triggers at the
		// next complete epoch of the recovered deployment.
		co.rescaledAt = time.Time{}
		*failedAt = co.clk()
		if len(alive) == 0 {
			return nil, fmt.Errorf("controller: all workers dead during rescale drain")
		}
		if co.opts.Replan == nil {
			return nil, fmt.Errorf("controller: worker %d died during rescale drain and no Replan is configured", dead[0])
		}
		agg.Recoveries++
		for _, d := range dead {
			co.trace(telemetry.Event{Kind: telemetry.EventRecoveryStart, Worker: co.workerID(d), Attempt: attempt,
				Attrs: map[string]any{"cause": "worker died during rescale drain"}})
		}
		prevRestore := *restore
		*restore = co.store.LastComplete()
		agg.Reprocessed += reprocessedSince(stopped, co.store, prevRestore, *restore)
		next, err := co.opts.Replan(dead, attempt+1)
		if err != nil {
			return nil, fmt.Errorf("controller: re-placement during rescale drain: %w", err)
		}
		if err := validateAssign(next, *assign, alive); err != nil {
			return nil, err
		}
		*assign = next
		co.logf("recovery: worker died during rescale drain; restarting attempt %d from epoch %d (rescale stays pending)", attempt+1, *restore)
		co.trace(telemetry.Event{Kind: telemetry.EventRecoveryRestart, Epoch: *restore, Attempt: attempt + 1,
			Attrs: map[string]any{"survivors": len(alive)}})
		return nil, errRetryAttempt
	}

	// Late snapshots collected during the abort may have completed a newer
	// epoch (which prunes older ones from the store); the newest complete
	// epoch is the one whose snapshots are guaranteed retained. Account the
	// rolled-back work before the store rewrite discards the old task set.
	epoch := co.store.LastComplete()
	prevRestore := *restore
	reproc := reprocessedSince(stopped, co.store, prevRestore, epoch)
	moved, err := co.store.ApplyRescale(string(p.Op), oldP, p.Parallelism, co.spec.KeyGroups, epoch)
	if err != nil {
		return nil, err
	}
	ev := engine.RescaleEvent{
		Op:             p.Op,
		OldParallelism: oldP,
		NewParallelism: p.Parallelism,
		Epoch:          epoch,
		MovedBytes:     moved,
		Attempt:        attempt,
	}
	var next []TaskAssignment
	if co.opts.RescaleAssign != nil {
		next, err = co.opts.RescaleAssign(ev, *assign)
	} else {
		next, err = rescaleAssignments(*assign, string(p.Op), oldP, p.Parallelism, co.spec.Workers, alive)
	}
	if err != nil {
		return nil, fmt.Errorf("controller: re-placement for rescale of %q: %w", p.Op, err)
	}
	if err := validateRescaleAssign(next, *assign, string(p.Op), oldP, p.Parallelism, alive); err != nil {
		return nil, err
	}
	co.spec.Rescaled = setOverride(co.spec.Rescaled, string(p.Op), p.Parallelism)
	*assign = next
	*restore = epoch
	agg.Reprocessed += reproc
	agg.Rescales++
	agg.RescaleMoved += moved
	co.lastRescale = &ev
	co.dropRescale(p)
	co.logf("rescale: %q %d→%d applied at epoch %d (%d state bytes moved); redeploying", p.Op, oldP, p.Parallelism, epoch, moved)
	co.trace(telemetry.Event{Kind: telemetry.EventRescaleStart, Op: string(p.Op), Epoch: epoch, Attempt: attempt,
		Attrs: map[string]any{"from": oldP, "to": p.Parallelism, "state_moved_bytes": moved}})
	return nil, errRetryAttempt
}

// rescaleAssignments is the default re-placement for a rescale: every task
// outside the rescaled operator (and its surviving indices) stays put; fresh
// tasks pack onto the lowest-index live workers with free slots.
func rescaleAssignments(prev []TaskAssignment, op string, oldP, newP int, workers []engine.WorkerSpec, alive map[int]bool) ([]TaskAssignment, error) {
	slotUse := make([]int, len(workers))
	var next []TaskAssignment
	for _, a := range prev {
		if a.Task.Op == op && a.Task.Index >= newP {
			continue
		}
		next = append(next, a)
		if a.Worker >= 0 && a.Worker < len(slotUse) {
			slotUse[a.Worker]++
		}
	}
	for i := oldP; i < newP; i++ {
		placed := false
		for w := range workers {
			if alive[w] && slotUse[w] < workers[w].Slots {
				next = append(next, TaskAssignment{Task: engine.WireTaskID{Op: op, Index: i}, Worker: w})
				slotUse[w]++
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("no free slot for new task %s[%d] (need RescaleAssign or more capacity)", op, i)
		}
	}
	return next, nil
}

// setOverride records op's new parallelism in the deploy spec's override
// list, replacing an earlier override of the same operator.
func setOverride(over []OpParallelism, op string, parallelism int) []OpParallelism {
	for i := range over {
		if over[i].Op == op {
			over[i].Parallelism = parallelism
			return over
		}
	}
	return append(over, OpParallelism{Op: op, Parallelism: parallelism})
}

// validateRescaleAssign rejects rescale re-placements that miss or invent
// tasks relative to the rescaled task set, or assign onto dead workers.
func validateRescaleAssign(next, prev []TaskAssignment, op string, oldP, newP int, alive map[int]bool) error {
	want := make(map[engine.WireTaskID]bool, len(prev)-oldP+newP)
	for _, a := range prev {
		if a.Task.Op != op {
			want[a.Task] = true
		}
	}
	for i := 0; i < newP; i++ {
		want[engine.WireTaskID{Op: op, Index: i}] = true
	}
	if len(next) != len(want) {
		return fmt.Errorf("controller: rescale re-placement has %d assignments, want %d", len(next), len(want))
	}
	seen := make(map[engine.WireTaskID]bool, len(next))
	for _, a := range next {
		if !want[a.Task] {
			return fmt.Errorf("controller: rescale re-placement invented task %v", a.Task)
		}
		if seen[a.Task] {
			return fmt.Errorf("controller: rescale re-placement assigns task %v twice", a.Task)
		}
		seen[a.Task] = true
		if !alive[a.Worker] {
			return fmt.Errorf("controller: rescale re-placement puts task %v on dead worker %d", a.Task, a.Worker)
		}
	}
	return nil
}

// abortAndCollect aborts every live worker and collects their STOPPED
// progress reports for reprocessing accounting (checkpoint snapshots that
// raced the abort are still recorded). A worker dying while stopping is
// removed from alive and gains a fault record; the caller decides what its
// loss means.
func (co *Coordinator) abortAndCollect(ctx context.Context, start time.Time, agg *engine.DistAgg,
	alive map[int]bool, attempt int) (map[int]*engine.WorkerReport, error) {
	for w := range alive {
		co.conns[w].w.send(engine.FrameAbort, wireEpoch{Attempt: attempt})
	}
	stopped := make(map[int]*engine.WorkerReport, len(alive))
	deadline := time.After(co.opts.StopTimeout)
	var moreDead []int
collect:
	for len(stopped) < len(alive) {
		select {
		case ev := <-co.events:
			if !alive[ev.worker] {
				continue
			}
			if ev.err != nil {
				moreDead = append(moreDead, ev.worker)
				delete(alive, ev.worker)
				continue
			}
			switch ev.frame.Type {
			case engine.FrameStopped, engine.FrameDone:
				var r wireReport
				if err := engine.DecodePayload(ev.frame.Payload, &r); err == nil && r.Report != nil && r.Report.Attempt == attempt {
					stopped[ev.worker] = r.Report
				}
			case engine.FrameSnapshot:
				// Snapshots raced the abort; they are still valid state.
				var s wireSnap
				if err := engine.DecodePayload(ev.frame.Payload, &s); err == nil && s.Attempt == attempt {
					co.store.Record(s.Snap)
				}
			}
		case <-deadline:
			break collect
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	for _, w := range moreDead {
		co.logf("worker %d also died during recovery", w)
		co.conns[w].alive.Store(false)
		co.conns[w].c.Close()
		agg.Faults = append(agg.Faults, engine.FaultRecord{
			Kind: engine.FaultKillWorker, Worker: w, Recovered: len(alive) > 0, At: co.clk.Since(start),
		})
	}
	return stopped, nil
}

// deadWorkers lists the workers of a co.n-process cluster not in alive.
func deadWorkers(n int, alive map[int]bool) []int {
	dead := make([]int, 0, n-len(alive))
	for w := 0; w < n; w++ {
		if !alive[w] {
			dead = append(dead, w)
		}
	}
	return dead
}

// errRetryAttempt is recover's signal to Run's loop to redeploy. It never
// escapes Run.
var errRetryAttempt = fmt.Errorf("controller: retry attempt")

// reprocessedSince mirrors the in-process engine's accounting: records the
// aborted attempt had processed beyond the restore point are work the next
// attempt must redo. Dead workers send no report, so their in-flight
// progress since their last snapshot is unknowable and uncounted.
func reprocessedSince(stopped map[int]*engine.WorkerReport, store *engine.SnapshotStore, prevRestore, restore int64) int64 {
	base := make(map[engine.WireTaskID]int64)
	for _, s := range store.EpochSnapshots(prevRestore) {
		base[s.Task] = s.RecordsIn
	}
	// The newer restore point supersedes the attempt's own starting state.
	for _, s := range store.EpochSnapshots(restore) {
		base[s.Task] = s.RecordsIn
	}
	var total int64
	for _, rep := range stopped {
		for _, ts := range rep.Tasks {
			if d := ts.RecordsIn - base[ts.Task]; d > 0 {
				total += d
			}
		}
	}
	return total
}

// validateAssign rejects re-placements that drop tasks, invent tasks, or
// assign onto dead workers.
func validateAssign(next, prev []TaskAssignment, alive map[int]bool) error {
	if len(next) != len(prev) {
		return fmt.Errorf("controller: re-placement has %d assignments, want %d", len(next), len(prev))
	}
	known := make(map[engine.WireTaskID]bool, len(prev))
	for _, a := range prev {
		known[a.Task] = true
	}
	seen := make(map[engine.WireTaskID]bool, len(next))
	for _, a := range next {
		if !known[a.Task] {
			return fmt.Errorf("controller: re-placement invented task %v", a.Task)
		}
		if seen[a.Task] {
			return fmt.Errorf("controller: re-placement assigns task %v twice", a.Task)
		}
		seen[a.Task] = true
		if !alive[a.Worker] {
			return fmt.Errorf("controller: re-placement puts task %v on dead worker %d", a.Task, a.Worker)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// worker

// JoinOptions tunes the worker-side loop.
type JoinOptions struct {
	// HeartbeatEvery is the liveness reporting interval (default 500ms).
	HeartbeatEvery time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// Telemetry, when set, is the worker's hub (pass the same hub to the
	// JobBuilder — NexmarkBuilderWith does). Each heartbeat then piggybacks
	// a metric delta and ships the tracer's new events to the coordinator;
	// nil keeps heartbeats payload-free.
	Telemetry *telemetry.Telemetry
}

// coordClient forwards a worker attempt's checkpoint traffic to the
// coordinator. Send errors are swallowed: a dead coordinator surfaces as a
// read error on the control connection, which ends the join loop.
type coordClient struct {
	w       *connWriter
	attempt int
}

func (c *coordClient) EpochStarted(epoch int64) {
	c.w.send(engine.FrameEpochStart, wireEpoch{Attempt: c.attempt, Epoch: epoch})
}

func (c *coordClient) TaskSnapshot(s engine.WireSnapshot) {
	c.w.send(engine.FrameSnapshot, wireSnap{Attempt: c.attempt, Snap: s})
}

// JoinCluster runs one worker process's control loop: join the coordinator
// at addr, then serve deploy/start/abort cycles until a SHUTDOWN frame (nil
// return), the coordinator vanishes, or ctx is canceled.
func JoinCluster(ctx context.Context, addr string, build JobBuilder, opts JoinOptions) error {
	if build == nil {
		return fmt.Errorf("controller: JoinCluster requires a JobBuilder")
	}
	if opts.HeartbeatEvery <= 0 {
		opts.HeartbeatEvery = 500 * time.Millisecond
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	d := net.Dialer{Timeout: 10 * time.Second}
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer c.Close()
	w := &connWriter{c: c}
	if err := w.send(engine.FrameHello, wireJoin{Proto: distProtoVersion}); err != nil {
		return err
	}
	f, err := engine.ReadFrame(c)
	if err != nil {
		return err
	}
	if f.Type != engine.FrameWelcome {
		return fmt.Errorf("controller: expected WELCOME, got frame type %d", f.Type)
	}
	var welcome wireWelcome
	if err := engine.DecodePayload(f.Payload, &welcome); err != nil {
		return err
	}
	me := welcome.Worker
	logf("joined as worker %d", me)

	// The reader goroutine owns the connection; ctx cancellation closes it
	// to unblock the read.
	frames := make(chan coordEvent, 16)
	go func() {
		for {
			f, err := engine.ReadFrame(c)
			if err != nil {
				frames <- coordEvent{err: err}
				return
			}
			frames <- coordEvent{frame: f}
		}
	}()
	stopHB := make(chan struct{})
	defer close(stopHB)
	go func() {
		// Each tick ships the tracer's new events (stamped with this
		// worker's identity) and a heartbeat carrying the metric delta
		// since the previous tick. Both are best-effort observability:
		// the trace feed drops rather than blocks, and an encode failure
		// must not kill liveness, so only the heartbeat send is fatal.
		sampler := newHBSampler(opts.Telemetry)
		feed := opts.Telemetry.Tracer().Subscribe(0)
		srcID := fmt.Sprintf("w%d", me)
		t := time.NewTicker(opts.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if evs := feed.Drain(256); len(evs) > 0 {
					for i := range evs {
						evs[i].Src = srcID
						evs[i].WSeq = evs[i].Seq
					}
					w.send(engine.FrameTrace, wireTrace{Events: evs, Dropped: feed.Dropped()})
				}
				if w.send(engine.FrameHeartbeat, wireHeartbeat{Stats: sampler.sample()}) != nil {
					return
				}
			case <-stopHB:
				return
			}
		}
	}()
	go func() {
		select {
		case <-ctx.Done():
			c.Close()
		case <-stopHB:
		}
	}()

	var run *engine.WorkerRun
	var attempt int
	var started bool
	runDone := make(chan *engine.WorkerRun, 1)
	// A live attempt must not outlive the control loop (the process may be
	// long-lived: tests join many clusters from one process).
	defer func() {
		if run == nil {
			return
		}
		if !started {
			run.Discard()
			return
		}
		run.Abort()
		<-run.Done()
	}()
	for {
		select {
		case fe := <-frames:
			if fe.err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return fmt.Errorf("controller: coordinator connection lost: %w", fe.err)
			}
			switch fe.frame.Type {
			case engine.FrameDeploy:
				var spec DeploySpec
				if err := engine.DecodePayload(fe.frame.Payload, &spec); err != nil {
					return fmt.Errorf("controller: bad DEPLOY: %w", err)
				}
				if run != nil && !started {
					run.Discard()
				}
				job, err := build(spec)
				if err != nil {
					return fmt.Errorf("controller: building job for deploy: %w", err)
				}
				attempt = spec.Attempt
				run, err = job.PrepareWorkerAttempt(engine.WorkerNetConfig{
					Local:        spec.Local,
					AttemptNo:    spec.Attempt,
					RestoreEpoch: spec.RestoreEpoch,
					Snapshots:    spec.Snapshots,
					Coord:        &coordClient{w: w, attempt: spec.Attempt},
					OnPeerDown: func(peer int, err error) {
						w.send(engine.FramePeerDown, wirePeer{Attempt: spec.Attempt, Peer: peer})
					},
				})
				if err != nil {
					return fmt.Errorf("controller: preparing attempt %d: %w", spec.Attempt, err)
				}
				started = false
				logf("attempt %d prepared (restore epoch %d), data plane on %s", spec.Attempt, spec.RestoreEpoch, run.DataAddr())
				if err := w.send(engine.FrameReady, wireReady{Attempt: spec.Attempt, Addr: run.DataAddr()}); err != nil {
					return err
				}
			case engine.FrameStart:
				var st wireStart
				if err := engine.DecodePayload(fe.frame.Payload, &st); err != nil {
					return fmt.Errorf("controller: bad START: %w", err)
				}
				if run == nil || st.Attempt != attempt {
					continue
				}
				run.Start(ctx, st.Peers)
				started = true
				go func(r *engine.WorkerRun) {
					<-r.Done()
					runDone <- r
				}(run)
				logf("attempt %d started", attempt)
			case engine.FrameAbort:
				if run == nil {
					continue
				}
				var rep *engine.WorkerReport
				if !started {
					rep = run.Discard()
				} else {
					run.Abort()
					<-run.Done()
					var err error
					rep, err = run.Report()
					if err != nil {
						return fmt.Errorf("controller: aborted attempt %d: %w", attempt, err)
					}
				}
				run = nil
				logf("attempt %d aborted", attempt)
				if err := w.send(engine.FrameStopped, wireReport{Report: rep}); err != nil {
					return err
				}
			case engine.FrameShutdown:
				logf("shutdown")
				return nil
			}
		case r := <-runDone:
			if r != run {
				continue // aborted attempt already reported via STOPPED
			}
			rep, err := r.Report()
			if err != nil {
				return fmt.Errorf("controller: attempt %d: %w", attempt, err)
			}
			run = nil
			logf("attempt %d done: %d records in across %d tasks", rep.Attempt, sumRecordsIn(rep), len(rep.Tasks))
			typ := byte(engine.FrameDone)
			if !rep.Completed {
				typ = engine.FrameStopped
			}
			if err := w.send(typ, wireReport{Report: rep}); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func sumRecordsIn(rep *engine.WorkerReport) int64 {
	var n int64
	for _, t := range rep.Tasks {
		n += t.RecordsIn
	}
	return n
}

// sortedWorkers is a small helper for deterministic logging/tests.
func sortedWorkers(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for w := range m {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}
