package controller

import (
	"context"
	"math"
	"testing"

	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/placement"
	"capsys/internal/simulator"
)

func TestNewOnlineProfilerValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, err := NewOnlineProfiler(alpha); err == nil {
			t.Errorf("alpha %v accepted", alpha)
		}
	}
	if _, err := NewOnlineProfiler(0.3); err != nil {
		t.Fatal(err)
	}
}

// On an uncontended deployment the online estimates converge to the ground
// truth unit costs.
func TestOnlineProfilerRecoversTruth(t *testing.T) {
	spec := nexmark.Q1Sliding().Scaled(0.3) // well under capacity
	c := nexmark.ReferenceCluster()
	_, res, err := DeploySingle(context.Background(), spec, c, placement.CAPS{}, 0, simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewOnlineProfiler(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.Observe(res, spec.Name)
	}
	for _, op := range spec.Graph.Operators() {
		got, ok := p.Cost(op.ID)
		if !ok {
			t.Fatalf("no estimate for %s", op.ID)
		}
		truth := op.Cost
		within := func(a, b float64) bool {
			if b == 0 {
				return a < 1e-9
			}
			return math.Abs(a-b)/b < 0.02
		}
		if !within(got.CPU, truth.CPU) || !within(got.IO, truth.IO) || !within(got.Net, truth.Net) {
			t.Errorf("%s: estimated %+v, truth %+v", op.ID, got, truth)
		}
	}
	// Apply installs the estimates on a clone.
	g := p.Apply(spec.Graph)
	if g == spec.Graph {
		t.Error("Apply must clone")
	}
	est, _ := p.Cost("slide-win")
	if g.Operator("slide-win").Cost != est {
		t.Error("Apply did not install the estimate")
	}
}

// Under contention the apparent CPU cost inflates — the signal a controller
// would act on.
func TestOnlineProfilerSeesContention(t *testing.T) {
	spec := nexmark.Q1Sliding()
	c := nexmark.ReferenceCluster()
	slots, _ := c.SlotsPerWorker()
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	worst := nexmark.FlinkWorstCase(phys, slots)
	res, err := simulator.Evaluate([]simulator.QueryDeployment{{
		Name: spec.Name, Phys: phys, Plan: worst, SourceRates: spec.SourceRates,
	}}, c, simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewOnlineProfiler(1.0)
	p.Observe(res, spec.Name)
	got, ok := p.Cost("slide-win")
	if !ok {
		t.Fatal("no estimate")
	}
	if got.CPU <= spec.Graph.Operator("slide-win").Cost.CPU {
		t.Errorf("contended CPU estimate %v not inflated over truth %v",
			got.CPU, spec.Graph.Operator("slide-win").Cost.CPU)
	}
}

// EWMA smoothing: after observing a contended snapshot then repeated clean
// snapshots, the estimate converges back toward truth.
func TestOnlineProfilerEWMAConvergence(t *testing.T) {
	spec := nexmark.Q1Sliding().Scaled(0.3)
	c := nexmark.ReferenceCluster()
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	slots, _ := c.SlotsPerWorker()
	worst := nexmark.FlinkWorstCase(phys, slots)
	fullRate := nexmark.Q1Sliding()
	physFull, _ := dataflow.Expand(fullRate.Graph)
	contended, err := simulator.Evaluate([]simulator.QueryDeployment{{
		Name: spec.Name, Phys: physFull, Plan: nexmark.FlinkWorstCase(physFull, slots), SourceRates: fullRate.SourceRates,
	}}, c, simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, clean, err := DeploySingle(context.Background(), spec, c, placement.CAPS{}, 0, simulator.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewOnlineProfiler(0.5)
	p.Observe(contended, spec.Name)
	inflated, _ := p.Cost("slide-win")
	for i := 0; i < 10; i++ {
		p.Observe(clean, spec.Name)
	}
	settled, _ := p.Cost("slide-win")
	truth := spec.Graph.Operator("slide-win").Cost.CPU
	if math.Abs(settled.CPU-truth)/truth > 0.05 {
		t.Errorf("EWMA did not converge: settled %v, truth %v", settled.CPU, truth)
	}
	if inflated.CPU <= settled.CPU {
		t.Errorf("contended estimate %v should exceed settled %v", inflated.CPU, settled.CPU)
	}
	_ = worst
}
