// Package controller implements the CAPSys adaptive resource controller
// (paper §5, Figure 6): it profiles operator resource costs by deploying
// each operator on a dedicated worker, derives per-operator parallelism with
// the DS2 scaling model, computes a task placement with a pluggable
// placement strategy (CAPS by default), and deploys the result — here onto
// the contention simulator that stands in for a Flink cluster.
//
// The controller also provides the multi-tenant joint deployment used in the
// paper's §6.2.2 (CAPSys views the whole workload as a single dataflow and
// optimizes placement globally) and the variable-workload reconfiguration
// loop of §6.4.
package controller

import (
	"context"
	"fmt"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
	"capsys/internal/nexmark"
	"capsys/internal/simulator"
)

// ProfileResult holds the profiled per-record unit costs per operator.
type ProfileResult struct {
	Costs map[dataflow.OperatorID]dataflow.UnitCost
}

// Profile estimates each operator's per-record unit resource costs following
// the paper's methodology (§5.1): every operator's tasks are deployed on a
// dedicated worker, the deployment runs at a fraction of the target rate so
// that nothing saturates, and each dimension's cost-per-record is the
// worker's measured load divided by the operator's observed rate.
//
// Profiling runs once per query; reconfigurations reuse the stored unit
// costs by multiplying them with the new target rates.
func Profile(ctx context.Context, spec nexmark.QuerySpec, probeFraction float64, cfg simulator.Config) (*ProfileResult, error) {
	if probeFraction <= 0 || probeFraction > 1 {
		return nil, fmt.Errorf("controller: probe fraction %v outside (0,1]", probeFraction)
	}
	g := spec.Graph
	ops := g.Operators()

	// One generously-provisioned worker per operator, so co-location never
	// distorts the measurement.
	maxPar := 0
	for _, op := range ops {
		if op.Parallelism > maxPar {
			maxPar = op.Parallelism
		}
	}
	workers := make([]cluster.Worker, len(ops))
	for i := range workers {
		workers[i] = cluster.Worker{
			ID:           fmt.Sprintf("profiler-%d", i),
			Slots:        maxPar,
			CPU:          1e9,
			IOBandwidth:  1e15,
			NetBandwidth: 1e15,
		}
	}
	profCluster, err := cluster.New(workers)
	if err != nil {
		return nil, err
	}
	phys, err := dataflow.Expand(g)
	if err != nil {
		return nil, err
	}
	plan := dataflow.NewPlan()
	for i, op := range ops {
		for _, t := range phys.TasksOf(op.ID) {
			plan.Assign(t, i)
		}
	}
	probeRates := make(map[dataflow.OperatorID]float64, len(spec.SourceRates))
	for k, v := range spec.SourceRates {
		probeRates[k] = v * probeFraction
	}
	res, err := simulator.Evaluate([]simulator.QueryDeployment{{
		Name: spec.Name, Phys: phys, Plan: plan, SourceRates: probeRates,
	}}, profCluster, cfg)
	if err != nil {
		return nil, err
	}

	rates, err := dataflow.PropagateRates(g, probeRates)
	if err != nil {
		return nil, err
	}
	out := &ProfileResult{Costs: make(map[dataflow.OperatorID]dataflow.UnitCost, len(ops))}
	for i, op := range ops {
		load := res.WorkerUtilization[i]
		capv := res.EffectiveCapacity[i]
		in := rates.In[op.ID]
		if in <= 0 {
			out.Costs[op.ID] = dataflow.UnitCost{}
			continue
		}
		// All of the operator's downstream links are remote under the
		// profiling placement, so the worker's network load is the full
		// emitted byte rate.
		out.Costs[op.ID] = dataflow.UnitCost{
			CPU: load.CPU * capv.CPU / in,
			IO:  load.IO * capv.IO / in,
			Net: load.Net * capv.Net / in,
		}
	}
	return out, nil
}

// Apply returns a clone of g with the profiled unit costs installed, which
// downstream components (cost model, CAPS) then treat as ground truth.
func (pr *ProfileResult) Apply(g *dataflow.LogicalGraph) (*dataflow.LogicalGraph, error) {
	c := g.Clone()
	for _, op := range c.Operators() {
		cost, ok := pr.Costs[op.ID]
		if !ok {
			return nil, fmt.Errorf("controller: no profiled cost for operator %q", op.ID)
		}
		op.Cost = cost
	}
	return c, nil
}
