package statebackend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Key-range-partitioned keyed state (Flink's key groups): every record key
// hashes into one of a fixed number of key-groups, and an operator task owns
// a contiguous range of groups. The group count is fixed for the life of a
// job, so changing an operator's parallelism only re-assigns whole groups to
// tasks — state moves group-by-group, exactly, without rehashing individual
// keys against a new task count.
//
// The three functions below are one consistent scheme and must not drift
// apart: TaskForGroup(g, p, G) == i exactly when RangeFor(i, p, G) contains
// g, and the ranges of all p tasks partition [0, G).

// DefaultKeyGroups is the key-group count used when Options.NumKeyGroups is
// zero. It bounds the maximum useful parallelism of any keyed operator, the
// way Flink's maxParallelism does.
const DefaultKeyGroups = 128

// KeyGroupOf maps a record key to its key-group: FNV-1a over the key bytes,
// modulo the group count. The hash is byte-identical to hash/fnv.New32a so
// the engine's inlined routing hash and this function can never disagree.
func KeyGroupOf(key string, numGroups int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(numGroups))
}

// storageKeyGroup maps a storage key to its key-group. Operators derive
// storage keys from the record key by appending a NUL byte and binary
// window metadata (the engine's winKey convention); a key without a NUL is
// its own logical key. Partitioning on the prefix keeps every storage key of
// one record key in one group.
func storageKeyGroup(k []byte, numGroups int) int {
	if i := bytes.IndexByte(k, 0); i >= 0 {
		k = k[:i]
	}
	return KeyGroupOf(string(k), numGroups)
}

// KeyRange is a half-open range [Start, End) of key-groups.
type KeyRange struct {
	Start int // first group in the range
	End   int // one past the last group
}

// Contains reports whether group g falls in the range.
func (r KeyRange) Contains(g int) bool { return g >= r.Start && g < r.End }

// Len is the number of groups in the range.
func (r KeyRange) Len() int { return r.End - r.Start }

func (r KeyRange) String() string { return fmt.Sprintf("[%d,%d)", r.Start, r.End) }

// checkPartition validates a (parallelism, numGroups) pair: a task must own
// at least one group, so parallelism cannot exceed the group count.
func checkPartition(parallelism, numGroups int) error {
	if numGroups <= 0 {
		return fmt.Errorf("statebackend: numGroups must be positive, have %d", numGroups)
	}
	if parallelism <= 0 {
		return fmt.Errorf("statebackend: parallelism must be positive, have %d", parallelism)
	}
	if parallelism > numGroups {
		return fmt.Errorf("statebackend: parallelism %d exceeds %d key-groups", parallelism, numGroups)
	}
	return nil
}

// TaskForGroup returns the task index owning group g at the given
// parallelism. Callers must have validated the pair (see checkPartition);
// the formula is Flink's computeOperatorIndexForKeyGroup.
func TaskForGroup(g, parallelism, numGroups int) int {
	return g * parallelism / numGroups
}

// RangeFor returns the key-group range owned by task `index` at the given
// parallelism: exactly the groups g with TaskForGroup(g) == index.
func RangeFor(index, parallelism, numGroups int) KeyRange {
	ceil := func(a int) int { return (a + parallelism - 1) / parallelism }
	return KeyRange{Start: ceil(index * numGroups), End: ceil((index + 1) * numGroups)}
}

// AssignGroups returns every task's key-group range at the given
// parallelism. The ranges partition [0, numGroups) in task order.
func AssignGroups(parallelism, numGroups int) ([]KeyRange, error) {
	if err := checkPartition(parallelism, numGroups); err != nil {
		return nil, err
	}
	out := make([]KeyRange, parallelism)
	for i := range out {
		out[i] = RangeFor(i, parallelism, numGroups)
	}
	return out, nil
}

// AssignGroups is the Store-level view using the store's configured group
// count.
func (s *Store) AssignGroups(parallelism int) ([]KeyRange, error) {
	return AssignGroups(parallelism, s.opts.NumKeyGroups)
}

// decodedGroup is one key-group's contents during repartitioning.
type decodedGroup struct {
	g     int
	data  []nsEntry
	lists []nsListEntry
}

// bytesHeld is the group's stored-byte accounting, matching the Namespace
// bookkeeping (len(key)+len(value) per entry; len(key)+sum(values) per list).
func (d *decodedGroup) bytesHeld() int64 {
	var n int64
	for _, e := range d.data {
		n += int64(len(e.K) + len(e.V))
	}
	for _, e := range d.lists {
		n += int64(len(e.K))
		for _, v := range e.V {
			n += int64(len(v))
		}
	}
	return n
}

// decodeImageGroups decodes one namespace image into its key-groups. Both
// layouts are accepted: the grouped v2 layout is taken as-is, and legacy
// flat entries are grouped by hashing their key prefixes.
func decodeImageGroups(buf []byte, numGroups int) (map[int]*decodedGroup, error) {
	var img nsImage
	if len(buf) > 0 {
		if err := json.Unmarshal(buf, &img); err != nil {
			return nil, err
		}
	}
	groups := make(map[int]*decodedGroup)
	get := func(g int) *decodedGroup {
		d := groups[g]
		if d == nil {
			d = &decodedGroup{g: g}
			groups[g] = d
		}
		return d
	}
	for _, gi := range img.Groups {
		if gi.G < 0 || gi.G >= numGroups {
			return nil, fmt.Errorf("statebackend: image holds group %d outside [0,%d)", gi.G, numGroups)
		}
		if _, dup := groups[gi.G]; dup {
			return nil, fmt.Errorf("statebackend: image holds group %d twice", gi.G)
		}
		d := get(gi.G)
		d.data = gi.Data
		d.lists = gi.Lists
	}
	for _, e := range img.Data {
		d := get(storageKeyGroup(e.K, numGroups))
		d.data = append(d.data, e)
	}
	for _, e := range img.Lists {
		d := get(storageKeyGroup(e.K, numGroups))
		d.lists = append(d.lists, e)
	}
	return groups, nil
}

// encodeGroups marshals a set of key-groups into the canonical grouped
// image: groups in ascending order, entries sorted by key within each.
func encodeGroups(groups []*decodedGroup) ([]byte, error) {
	sort.Slice(groups, func(i, j int) bool { return groups[i].g < groups[j].g })
	var img nsImage
	for _, d := range groups {
		gi := groupImage{G: d.g, Data: d.data, Lists: d.lists}
		sort.Slice(gi.Data, func(i, j int) bool { return string(gi.Data[i].K) < string(gi.Data[j].K) })
		sort.Slice(gi.Lists, func(i, j int) bool { return string(gi.Lists[i].K) < string(gi.Lists[j].K) })
		img.Groups = append(img.Groups, gi)
	}
	return json.Marshal(img)
}

// Repartition re-splits per-task namespace images for a parallelism change.
// images[i] is old task i's Snapshot image (nil for an empty namespace). It
// returns newParallelism images — new task i's image holds exactly the
// groups in RangeFor(i, newParallelism, numGroups) — plus the number of
// stored bytes whose owning task changed (the state that must move between
// workers). The split/merge is exact: every group lands in exactly one new
// image, byte-for-byte as it was snapshotted, and repartitioning back to the
// old parallelism reproduces the original images.
func Repartition(images [][]byte, oldParallelism, newParallelism, numGroups int) ([][]byte, int64, error) {
	if err := checkPartition(oldParallelism, numGroups); err != nil {
		return nil, 0, err
	}
	if err := checkPartition(newParallelism, numGroups); err != nil {
		return nil, 0, err
	}
	if len(images) != oldParallelism {
		return nil, 0, fmt.Errorf("statebackend: repartition of %d images at old parallelism %d", len(images), oldParallelism)
	}
	perTask := make([][]*decodedGroup, newParallelism)
	seen := make(map[int]int) // group -> old task it came from
	var moved int64
	for oldIdx, buf := range images {
		groups, err := decodeImageGroups(buf, numGroups)
		if err != nil {
			return nil, 0, fmt.Errorf("statebackend: repartition image %d: %w", oldIdx, err)
		}
		for g, d := range groups {
			if prev, dup := seen[g]; dup {
				return nil, 0, fmt.Errorf("statebackend: group %d held by old tasks %d and %d", g, prev, oldIdx)
			}
			seen[g] = oldIdx
			newIdx := TaskForGroup(g, newParallelism, numGroups)
			perTask[newIdx] = append(perTask[newIdx], d)
			if newIdx != oldIdx {
				moved += d.bytesHeld()
			}
		}
	}
	out := make([][]byte, newParallelism)
	for i, groups := range perTask {
		buf, err := encodeGroups(groups)
		if err != nil {
			return nil, 0, fmt.Errorf("statebackend: repartition encode task %d: %w", i, err)
		}
		out[i] = buf
	}
	return out, moved, nil
}

// Repartition is the Store-level Repartition using the store's configured
// group count.
func (s *Store) Repartition(images [][]byte, oldParallelism, newParallelism int) ([][]byte, int64, error) {
	return Repartition(images, oldParallelism, newParallelism, s.opts.NumKeyGroups)
}
