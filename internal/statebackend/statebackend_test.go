package statebackend

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s := NewStore(nil, Options{})
	ns := s.Namespace("t1")
	if _, ok := ns.Get("missing"); ok {
		t.Error("Get on missing key returned ok")
	}
	ns.Put("k", []byte("hello"))
	v, ok := ns.Get("k")
	if !ok || string(v) != "hello" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	ns.Put("k", []byte("world!"))
	v, _ = ns.Get("k")
	if string(v) != "world!" {
		t.Errorf("overwrite lost: %q", v)
	}
	if !ns.Delete("k") {
		t.Error("Delete existing returned false")
	}
	if ns.Delete("k") {
		t.Error("Delete missing returned true")
	}
	if _, ok := ns.Get("k"); ok {
		t.Error("key survived delete")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore(nil, Options{})
	ns := s.Namespace("t")
	ns.Put("k", []byte("abc"))
	v, _ := ns.Get("k")
	v[0] = 'X'
	v2, _ := ns.Get("k")
	if string(v2) != "abc" {
		t.Error("Get exposed internal buffer")
	}
}

func TestListState(t *testing.T) {
	s := NewStore(nil, Options{})
	ns := s.Namespace("t")
	ns.Append("w", []byte("a"))
	ns.Append("w", []byte("b"))
	ns.Append("w", []byte("c"))
	vals := ns.List("w")
	if len(vals) != 3 || string(vals[0]) != "a" || string(vals[2]) != "c" {
		t.Errorf("List = %v", vals)
	}
	if keys := ns.ListKeys(); len(keys) != 1 || keys[0] != "w" {
		t.Errorf("ListKeys = %v", keys)
	}
	if n := ns.ClearList("w"); n != 3 {
		t.Errorf("ClearList = %d", n)
	}
	if len(ns.List("w")) != 0 {
		t.Error("list survived clear")
	}
	if n := ns.ClearList("nope"); n != 0 {
		t.Errorf("ClearList(missing) = %d", n)
	}
}

func TestAccounting(t *testing.T) {
	var reads, writes int
	s := NewStore(func(r, w int) { reads += r; writes += w }, Options{})
	ns := s.Namespace("t")
	ns.Put("key", []byte("value")) // write 3+5 = 8
	if writes != 8 {
		t.Errorf("writes = %d, want 8", writes)
	}
	ns.Get("key") // read 3+5 = 8
	if reads != 8 {
		t.Errorf("reads = %d, want 8", reads)
	}
	st := ns.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.ReadBytes != 8 || st.WriteBytes != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAmplification(t *testing.T) {
	var reads, writes int
	s := NewStore(func(r, w int) { reads += r; writes += w }, Options{
		WriteAmplification: 3, ReadAmplification: 2,
	})
	ns := s.Namespace("t")
	ns.Put("ab", []byte("cd")) // 4 raw -> 12 charged
	if writes != 12 {
		t.Errorf("amplified writes = %d, want 12", writes)
	}
	ns.Get("ab") // 4 raw -> 8 charged
	if reads != 8 {
		t.Errorf("amplified reads = %d, want 8", reads)
	}
	// Amplification below 1 is clamped.
	s2 := NewStore(func(r, w int) { writes = w }, Options{WriteAmplification: 0.5})
	s2.Namespace("x").Put("a", []byte("b"))
	if writes != 2 {
		t.Errorf("clamped amplification writes = %d, want 2", writes)
	}
}

func TestStoredBytesTracking(t *testing.T) {
	s := NewStore(nil, Options{})
	ns := s.Namespace("t")
	ns.Put("k1", []byte("aaaa")) // 2+4 = 6
	ns.Put("k2", []byte("bb"))   // 2+2 = 4
	if got := s.TotalBytes(); got != 10 {
		t.Errorf("TotalBytes = %d, want 10", got)
	}
	ns.Put("k1", []byte("a")) // shrink by 3
	if got := s.TotalBytes(); got != 7 {
		t.Errorf("TotalBytes after overwrite = %d, want 7", got)
	}
	ns.Delete("k2")
	if got := s.TotalBytes(); got != 3 {
		t.Errorf("TotalBytes after delete = %d, want 3", got)
	}
	ns.Append("lst", []byte("xyz")) // 3+3
	if got := s.TotalBytes(); got != 9 {
		t.Errorf("TotalBytes with list = %d, want 9", got)
	}
	if freed := s.DropNamespace("t"); freed != 9 {
		t.Errorf("DropNamespace freed %d, want 9", freed)
	}
	if s.TotalBytes() != 0 {
		t.Error("bytes remain after drop")
	}
	if s.DropNamespace("missing") != 0 {
		t.Error("dropping missing namespace freed bytes")
	}
}

func TestNamespaceIsolation(t *testing.T) {
	s := NewStore(nil, Options{})
	a, b := s.Namespace("a"), s.Namespace("b")
	a.Put("k", []byte("va"))
	if _, ok := b.Get("k"); ok {
		t.Error("namespaces share keys")
	}
	if s.Namespace("a") != a {
		t.Error("Namespace not idempotent")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(nil, Options{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ns := s.Namespace(fmt.Sprintf("task-%d", id%4)) // share some namespaces
			for j := 0; j < 200; j++ {
				key := fmt.Sprintf("k%d", j%10)
				ns.Put(key, []byte("v"))
				ns.Get(key)
				ns.Append("list", []byte("x"))
				if j%50 == 0 {
					ns.ClearList("list")
				}
			}
		}(i)
	}
	wg.Wait()
	if s.TotalBytes() < 0 {
		t.Error("negative stored bytes after concurrent use")
	}
}

// Property: read-your-writes and byte accounting consistency under random
// operation sequences.
func TestStorePropertyReadYourWrites(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(nil, Options{})
		ns := s.Namespace("p")
		shadow := map[string]string{}
		for i := 0; i < 300; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(20))
			switch rng.Intn(3) {
			case 0:
				val := fmt.Sprintf("v%d", rng.Intn(1000))
				ns.Put(key, []byte(val))
				shadow[key] = val
			case 1:
				got, ok := ns.Get(key)
				want, wok := shadow[key]
				if ok != wok || (ok && string(got) != want) {
					return false
				}
			case 2:
				ok := ns.Delete(key)
				_, wok := shadow[key]
				if ok != wok {
					return false
				}
				delete(shadow, key)
			}
		}
		// Stored bytes match the shadow contents exactly.
		want := 0
		for k, v := range shadow {
			want += len(k) + len(v)
		}
		return ns.Stats().StoredByte == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
