// Package statebackend provides the embedded key-value state store used by
// stateful operators in the engine, standing in for RocksDB in the paper's
// deployments.
//
// The store keeps data in memory but charges every operation's bytes to an
// accounting callback, which the engine wires to the owning worker's shared
// disk-I/O meter — so co-located stateful tasks genuinely contend for I/O
// bandwidth, the effect the paper measures in §3.3. Read and write
// amplification factors model LSM compaction and read overheads.
package statebackend

import (
	"fmt"
	"sync"
)

// AccountFunc receives the number of bytes read or written by an operation.
// It may block (e.g. on a token bucket) to enforce bandwidth limits.
type AccountFunc func(readBytes, writeBytes int)

// Options tunes the backend.
type Options struct {
	// WriteAmplification multiplies charged write bytes (LSM compaction
	// rewrites data several times). Values < 1 are treated as 1.
	WriteAmplification float64
	// ReadAmplification multiplies charged read bytes (LSM point reads may
	// touch several levels). Values < 1 are treated as 1.
	ReadAmplification float64
	// NumKeyGroups is the number of key-groups namespace snapshots are
	// partitioned into (see keygroups.go). It is fixed for the life of a job
	// and bounds the maximum operator parallelism a rescale can reach. Zero
	// means DefaultKeyGroups.
	NumKeyGroups int
}

// Store is a namespaced KV store. It is safe for concurrent use by multiple
// namespaces; operations within one namespace are also individually
// thread-safe.
type Store struct {
	mu      sync.RWMutex
	spaces  map[string]*Namespace
	account AccountFunc
	opts    Options
}

// NewStore creates a store charging operations to account (nil = no
// accounting).
func NewStore(account AccountFunc, opts Options) *Store {
	if opts.WriteAmplification < 1 {
		opts.WriteAmplification = 1
	}
	if opts.ReadAmplification < 1 {
		opts.ReadAmplification = 1
	}
	if opts.NumKeyGroups <= 0 {
		opts.NumKeyGroups = DefaultKeyGroups
	}
	if account == nil {
		account = func(int, int) {}
	}
	return &Store{
		spaces:  make(map[string]*Namespace),
		account: account,
		opts:    opts,
	}
}

// Namespace returns (creating if necessary) the named keyspace, typically
// one per task.
func (s *Store) Namespace(name string) *Namespace {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns, ok := s.spaces[name]
	if !ok {
		ns = &Namespace{
			store: s,
			name:  name,
			data:  make(map[string][]byte),
			lists: make(map[string][][]byte),
		}
		s.spaces[name] = ns
	}
	return ns
}

// DropNamespace removes a namespace and returns the bytes it held.
func (s *Store) DropNamespace(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns, ok := s.spaces[name]
	if !ok {
		return 0
	}
	delete(s.spaces, name)
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.bytes
}

// TotalBytes reports the bytes held across all namespaces.
func (s *Store) TotalBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, ns := range s.spaces {
		ns.mu.Lock()
		total += ns.bytes
		ns.mu.Unlock()
	}
	return total
}

// Namespace is one task's keyspace.
type Namespace struct {
	store   *Store
	name    string
	mu      sync.Mutex
	data    map[string][]byte
	lists   map[string][][]byte
	bytes   int
	account AccountFunc // overrides store.account when non-nil; guarded by mu

	readBytes  int
	writeBytes int
	reads      int
	writes     int
}

// SetAccount overrides the store-level accounting callback for this
// namespace only. A namespace is one task's keyspace, so a per-namespace
// callback lets the engine charge state I/O to that task's private meter
// shard instead of a callback shared by every co-located task. nil restores
// the store-level callback.
func (ns *Namespace) SetAccount(f AccountFunc) {
	ns.mu.Lock()
	ns.account = f
	ns.mu.Unlock()
}

// chargeRead updates counters under ns.mu (caller must NOT hold it) and then
// invokes the accounting callback outside any lock, since it may block on a
// bandwidth meter.
func (ns *Namespace) chargeRead(n int) {
	amp := int(float64(n) * ns.store.opts.ReadAmplification)
	ns.mu.Lock()
	ns.reads++
	ns.readBytes += amp
	account := ns.account
	ns.mu.Unlock()
	if account == nil {
		account = ns.store.account
	}
	account(amp, 0)
}

func (ns *Namespace) chargeWrite(n int) {
	amp := int(float64(n) * ns.store.opts.WriteAmplification)
	ns.mu.Lock()
	ns.writes++
	ns.writeBytes += amp
	account := ns.account
	ns.mu.Unlock()
	if account == nil {
		account = ns.store.account
	}
	account(0, amp)
}

// Put stores value under key.
func (ns *Namespace) Put(key string, value []byte) {
	ns.mu.Lock()
	old, existed := ns.data[key]
	cp := append([]byte(nil), value...)
	ns.data[key] = cp
	if existed {
		ns.bytes += len(cp) - len(old)
	} else {
		ns.bytes += len(key) + len(cp)
	}
	ns.mu.Unlock()
	ns.chargeWrite(len(key) + len(value))
}

// Get retrieves the value stored under key.
func (ns *Namespace) Get(key string) ([]byte, bool) {
	ns.mu.Lock()
	v, ok := ns.data[key]
	var cp []byte
	if ok {
		cp = append([]byte(nil), v...)
	}
	ns.mu.Unlock()
	ns.chargeRead(len(key) + len(cp))
	if !ok {
		return nil, false
	}
	return cp, true
}

// Delete removes key and reports whether it existed.
func (ns *Namespace) Delete(key string) bool {
	ns.mu.Lock()
	v, ok := ns.data[key]
	if ok {
		delete(ns.data, key)
		ns.bytes -= len(key) + len(v)
	}
	ns.mu.Unlock()
	ns.chargeWrite(len(key))
	return ok
}

// Append adds value to the list stored under key (Flink's ListState.add).
func (ns *Namespace) Append(key string, value []byte) {
	cp := append([]byte(nil), value...)
	ns.mu.Lock()
	if _, ok := ns.lists[key]; !ok {
		ns.bytes += len(key)
	}
	ns.lists[key] = append(ns.lists[key], cp)
	ns.bytes += len(cp)
	ns.mu.Unlock()
	ns.chargeWrite(len(key) + len(value))
}

// List returns all values appended under key, in insertion order.
func (ns *Namespace) List(key string) [][]byte {
	ns.mu.Lock()
	vals := ns.lists[key]
	out := make([][]byte, len(vals))
	total := len(key)
	for i, v := range vals {
		out[i] = append([]byte(nil), v...)
		total += len(v)
	}
	ns.mu.Unlock()
	ns.chargeRead(total)
	return out
}

// ClearList drops the list stored under key and returns how many elements
// it held.
func (ns *Namespace) ClearList(key string) int {
	ns.mu.Lock()
	vals, ok := ns.lists[key]
	n := len(vals)
	if ok {
		delete(ns.lists, key)
		ns.bytes -= len(key)
		for _, v := range vals {
			ns.bytes -= len(v)
		}
	}
	ns.mu.Unlock()
	ns.chargeWrite(len(key))
	return n
}

// ListKeys returns the keys that currently hold lists. The result order is
// unspecified.
func (ns *Namespace) ListKeys() []string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make([]string, 0, len(ns.lists))
	for k := range ns.lists {
		out = append(out, k)
	}
	return out
}

// Stats reports accumulated accounting for the namespace.
type Stats struct {
	Reads      int
	Writes     int
	ReadBytes  int
	WriteBytes int
	StoredByte int
}

// Keys reports how many distinct keys the namespace currently holds across
// its KV and list maps. Exposed for the engine's state.* gauges.
func (ns *Namespace) Keys() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return len(ns.data) + len(ns.lists)
}

// StoredBytes reports the bytes the namespace currently holds, using the
// same accounting as TotalBytes. Exposed for the engine's state.* gauges.
func (ns *Namespace) StoredBytes() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.bytes
}

// Stats returns a snapshot of the namespace's accounting counters.
func (ns *Namespace) Stats() Stats {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return Stats{
		Reads:      ns.reads,
		Writes:     ns.writes,
		ReadBytes:  ns.readBytes,
		WriteBytes: ns.writeBytes,
		StoredByte: ns.bytes,
	}
}

// String identifies the namespace for debugging.
func (ns *Namespace) String() string { return fmt.Sprintf("ns(%s)", ns.name) }
