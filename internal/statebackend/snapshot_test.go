package statebackend

import (
	"bytes"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := NewStore(nil, Options{})
	ns := src.Namespace("task")
	// Binary keys (window keys embed big-endian timestamps, including bytes
	// that are invalid UTF-8 on their own) must survive the round trip.
	binKey := "k\x00" + string([]byte{0, 0, 0, 0, 0, 0, 0, 0xC8})
	ns.Put(binKey, []byte("v1"))
	ns.Put("plain", []byte("v2"))
	ns.Append("list", []byte("a"))
	ns.Append("list", []byte("b"))

	img, err := ns.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	dst := NewStore(nil, Options{})
	ns2 := dst.Namespace("task")
	if err := ns2.Restore(img); err != nil {
		t.Fatal(err)
	}
	if v, ok := ns2.Get(binKey); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Errorf("binary key lost in round trip: %q %v", v, ok)
	}
	if v, ok := ns2.Get("plain"); !ok || !bytes.Equal(v, []byte("v2")) {
		t.Errorf("plain key lost: %q %v", v, ok)
	}
	if l := ns2.List("list"); len(l) != 2 || !bytes.Equal(l[0], []byte("a")) || !bytes.Equal(l[1], []byte("b")) {
		t.Errorf("list state lost: %v", l)
	}
	if got, want := ns2.Stats().StoredByte, ns.Stats().StoredByte; got != want {
		t.Errorf("restored byte accounting %d, want %d", got, want)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []string) []byte {
		ns := NewStore(nil, Options{}).Namespace("t")
		for _, k := range order {
			ns.Put(k, []byte("v-"+k))
			ns.Append("l-"+k, []byte(k))
		}
		img, err := ns.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	a := build([]string{"x", "y", "z"})
	b := build([]string{"z", "x", "y"})
	if !bytes.Equal(a, b) {
		t.Error("snapshot bytes depend on insertion order")
	}
}

func TestRestoreEmptyClears(t *testing.T) {
	ns := NewStore(nil, Options{}).Namespace("t")
	ns.Put("k", []byte("v"))
	if err := ns.Restore(nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := ns.Get("k"); ok {
		t.Error("empty restore did not clear namespace")
	}
	if ns.Stats().StoredByte != 0 {
		t.Errorf("bytes = %d after clear", ns.Stats().StoredByte)
	}
}

func TestSnapshotChargesAccounting(t *testing.T) {
	var reads, writes int
	ns := NewStore(func(r, w int) { reads += r; writes += w }, Options{}).Namespace("t")
	ns.Put("key", []byte("value"))
	reads, writes = 0, 0
	img, err := ns.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if reads == 0 || writes == 0 {
		t.Errorf("snapshot charged reads=%d writes=%d, want both > 0", reads, writes)
	}
	reads, writes = 0, 0
	if err := ns.Restore(img); err != nil {
		t.Fatal(err)
	}
	if writes == 0 {
		t.Errorf("restore charged writes=%d, want > 0", writes)
	}
}
