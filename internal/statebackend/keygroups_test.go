package statebackend

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"testing"
)

// TestKeyGroupOfMatchesFNV pins the inlined hash against the standard
// library: the engine's router and the statebackend partitioner must agree
// on every key.
func TestKeyGroupOfMatchesFNV(t *testing.T) {
	for _, key := range []string{"", "a", "key-7", "auction|1234", "\x00\xff\x10binary"} {
		h := fnv.New32a()
		h.Write([]byte(key))
		want := int(h.Sum32() % uint32(DefaultKeyGroups))
		if got := KeyGroupOf(key, DefaultKeyGroups); got != want {
			t.Errorf("KeyGroupOf(%q) = %d, fnv says %d", key, got, want)
		}
	}
}

// TestAssignGroupsPartition checks the core invariant for a sweep of
// (parallelism, numGroups) pairs: ranges partition [0, G) in order, and
// TaskForGroup agrees with RangeFor on every group.
func TestAssignGroupsPartition(t *testing.T) {
	for _, G := range []int{1, 2, 7, 64, 128, 500} {
		for p := 1; p <= G && p <= 130; p++ {
			ranges, err := AssignGroups(p, G)
			if err != nil {
				t.Fatalf("AssignGroups(%d,%d): %v", p, G, err)
			}
			next := 0
			for i, r := range ranges {
				if r.Start != next {
					t.Fatalf("p=%d G=%d task %d starts at %d, want %d", p, G, i, r.Start, next)
				}
				if r.Len() < 1 {
					t.Fatalf("p=%d G=%d task %d owns empty range %v", p, G, i, r)
				}
				for g := r.Start; g < r.End; g++ {
					if TaskForGroup(g, p, G) != i {
						t.Fatalf("p=%d G=%d group %d: TaskForGroup=%d but in range of task %d",
							p, G, g, TaskForGroup(g, p, G), i)
					}
				}
				next = r.End
			}
			if next != G {
				t.Fatalf("p=%d G=%d ranges cover [0,%d), want [0,%d)", p, G, next, G)
			}
		}
	}
}

func TestAssignGroupsRejectsOverParallelism(t *testing.T) {
	if _, err := AssignGroups(5, 4); err == nil {
		t.Fatal("AssignGroups(5, 4) should fail: tasks would own no groups")
	}
	if _, _, err := Repartition(make([][]byte, 3), 3, 200, 128); err == nil {
		t.Fatal("Repartition to parallelism > numGroups should fail")
	}
}

// winKey mirrors the engine's storage-key convention for windowed state:
// record key, NUL, big-endian window start.
func testWinKey(key string, start int64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(start))
	return key + "\x00" + string(b[:])
}

func populated(t *testing.T, p, G int, keys int) ([][]byte, *Store) {
	t.Helper()
	store := NewStore(nil, Options{NumKeyGroups: G})
	images := make([][]byte, p)
	nss := make([]*Namespace, p)
	for i := range nss {
		nss[i] = store.Namespace(fmt.Sprintf("task%d", i))
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		owner := TaskForGroup(KeyGroupOf(key, G), p, G)
		nss[owner].Put(testWinKey(key, int64(k*100)), []byte(fmt.Sprintf("v%d", k)))
		nss[owner].Append(key, []byte{byte(k), 0xff, 0x00})
	}
	for i, ns := range nss {
		img, err := ns.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		images[i] = img
	}
	return images, store
}

// TestRepartitionRoundTrip: split p→q then merge q→p reproduces the
// original images byte-for-byte, and identity repartition moves nothing.
func TestRepartitionRoundTrip(t *testing.T) {
	const G = 64
	for _, tc := range []struct{ p, q int }{{1, 4}, {2, 3}, {3, 2}, {4, 1}, {2, 2}, {5, 7}} {
		images, store := populated(t, tc.p, G, 40)
		split, movedOut, err := store.Repartition(images, tc.p, tc.q)
		if err != nil {
			t.Fatalf("p=%d q=%d split: %v", tc.p, tc.q, err)
		}
		if tc.p == tc.q && movedOut != 0 {
			t.Errorf("identity repartition p=%d moved %d bytes, want 0", tc.p, movedOut)
		}
		merged, movedBack, err := store.Repartition(split, tc.q, tc.p)
		if err != nil {
			t.Fatalf("p=%d q=%d merge: %v", tc.p, tc.q, err)
		}
		if movedOut != movedBack {
			t.Errorf("p=%d q=%d asymmetric moved bytes: out %d back %d", tc.p, tc.q, movedOut, movedBack)
		}
		for i := range images {
			if !bytes.Equal(images[i], merged[i]) {
				t.Errorf("p=%d q=%d image %d not restored byte-identically\n got %s\nwant %s",
					tc.p, tc.q, i, merged[i], images[i])
			}
		}
	}
}

// TestRepartitionOwnership: after a repartition every entry lives in the
// image of the task that owns its key-group, and restoring the new images
// preserves the total stored bytes.
func TestRepartitionOwnership(t *testing.T) {
	const G, p, q = 128, 2, 5
	images, store := populated(t, p, G, 60)
	split, moved, err := store.Repartition(images, p, q)
	if err != nil {
		t.Fatal(err)
	}
	if moved <= 0 {
		t.Error("scale 2→5 should move some state")
	}
	total := 0
	restoreStore := NewStore(nil, Options{NumKeyGroups: G})
	for i, img := range split {
		groups, err := decodeImageGroups(img, G)
		if err != nil {
			t.Fatal(err)
		}
		r := RangeFor(i, q, G)
		for g := range groups {
			if !r.Contains(g) {
				t.Errorf("new task %d (range %v) holds group %d", i, r, g)
			}
		}
		ns := restoreStore.Namespace(fmt.Sprintf("t%d", i))
		if err := ns.Restore(img); err != nil {
			t.Fatal(err)
		}
		total += ns.StoredBytes()
	}
	if want := store.TotalBytes(); total != want {
		t.Errorf("restored total %d bytes, original holds %d", total, want)
	}
}

// TestRestoreAcceptsLegacyFlatImage: images written before the key-group
// layout (flat data/lists) still restore, and re-snapshotting them yields
// the grouped layout.
func TestRestoreAcceptsLegacyFlatImage(t *testing.T) {
	legacy := []byte(`{"data":[{"k":"a2V5LTE=","v":"djE="}],"lists":[{"k":"bGs=","v":["eA=="]}]}`)
	store := NewStore(nil, Options{})
	ns := store.Namespace("t")
	if err := ns.Restore(legacy); err != nil {
		t.Fatal(err)
	}
	if v, ok := ns.Get("key-1"); !ok || string(v) != "v1" {
		t.Fatalf("legacy data entry lost: %q %v", v, ok)
	}
	if l := ns.List("lk"); len(l) != 1 || string(l[0]) != "x" {
		t.Fatalf("legacy list entry lost: %v", l)
	}
	img, err := ns.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(img, []byte(`"groups"`)) {
		t.Fatalf("re-snapshot should be grouped, got %s", img)
	}
}

// TestNamespaceGauges covers the Keys/StoredBytes accessors the engine's
// state.* gauges read.
func TestNamespaceGauges(t *testing.T) {
	ns := NewStore(nil, Options{}).Namespace("t")
	ns.Put("a", []byte("12"))
	ns.Put("b", []byte("3456"))
	ns.Append("l", []byte("78"))
	if got := ns.Keys(); got != 3 {
		t.Errorf("Keys() = %d, want 3", got)
	}
	// a:1+2, b:1+4, l:1+2
	if got := ns.StoredBytes(); got != 11 {
		t.Errorf("StoredBytes() = %d, want 11", got)
	}
}

// FuzzKeyGroupPartition feeds arbitrary key/value material and a
// parallelism transition into the split/merge path and checks the lossless
// invariants: no group orphaned or duplicated, every group owned by exactly
// the task whose range contains it, and split→merge reproducing the
// original images byte-for-byte.
func FuzzKeyGroupPartition(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(64), []byte("key-1\x00key-2\x00a|b"))
	f.Add(uint8(1), uint8(8), uint8(128), []byte("auction"))
	f.Add(uint8(4), uint8(4), uint8(16), []byte("\xff\x00\x10"))
	f.Add(uint8(7), uint8(2), uint8(9), []byte("x\x00y\x00z\x00w"))
	f.Fuzz(func(t *testing.T, rawP, rawQ, rawG uint8, material []byte) {
		G := int(rawG)%256 + 1
		p := int(rawP)%G + 1
		q := int(rawQ)%G + 1

		// Build p images by routing derived keys to their owning task.
		store := NewStore(nil, Options{NumKeyGroups: G})
		nss := make([]*Namespace, p)
		for i := range nss {
			nss[i] = store.Namespace(fmt.Sprintf("t%d", i))
		}
		for i, part := range bytes.Split(material, []byte{0}) {
			key := string(part)
			owner := TaskForGroup(KeyGroupOf(key, G), p, G)
			nss[owner].Put(testWinKey(key, int64(i)), part)
			if i%2 == 0 {
				nss[owner].Append(key, part)
			}
		}
		images := make([][]byte, p)
		for i, ns := range nss {
			img, err := ns.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			images[i] = img
		}

		split, _, err := Repartition(images, p, q, G)
		if err != nil {
			t.Fatalf("split %d→%d G=%d: %v", p, q, G, err)
		}
		if len(split) != q {
			t.Fatalf("split yielded %d images, want %d", len(split), q)
		}
		seen := map[int]bool{}
		for i, img := range split {
			groups, err := decodeImageGroups(img, G)
			if err != nil {
				t.Fatal(err)
			}
			r := RangeFor(i, q, G)
			for g := range groups {
				if seen[g] {
					t.Fatalf("group %d appears in two new images", g)
				}
				seen[g] = true
				if !r.Contains(g) {
					t.Fatalf("new task %d (range %v) holds group %d", i, r, g)
				}
			}
		}
		// No group orphaned: every group present before is present after.
		for _, img := range images {
			groups, err := decodeImageGroups(img, G)
			if err != nil {
				t.Fatal(err)
			}
			for g := range groups {
				if !seen[g] {
					t.Fatalf("group %d orphaned by split", g)
				}
			}
		}

		merged, _, err := Repartition(split, q, p, G)
		if err != nil {
			t.Fatalf("merge %d→%d G=%d: %v", q, p, G, err)
		}
		for i := range images {
			if !bytes.Equal(images[i], merged[i]) {
				t.Fatalf("image %d not restored byte-identically after %d→%d→%d", i, p, q, p)
			}
		}
	})
}
