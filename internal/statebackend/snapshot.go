package statebackend

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Namespace keys may contain arbitrary bytes (window keys embed big-endian
// timestamps), and JSON map keys silently mangle invalid UTF-8. The image
// therefore stores keys as []byte entries (base64 in JSON) in sorted key
// order, which keeps the encoding both binary-safe and deterministic: the
// same logical contents always produce the same bytes — the engine's
// deterministic-recovery tests rely on this.
type nsEntry struct {
	K []byte `json:"k"`
	V []byte `json:"v"`
}

type nsListEntry struct {
	K []byte   `json:"k"`
	V [][]byte `json:"v"`
}

type nsImage struct {
	Data  []nsEntry     `json:"data,omitempty"`
	Lists []nsListEntry `json:"lists,omitempty"`
}

// Snapshot serializes the namespace's complete contents into a
// self-contained, deterministic byte image. The read of the stored bytes and
// the write of the image are both charged to the store's accounting callback,
// so periodic checkpoints genuinely contend for the worker's I/O bandwidth
// the way RocksDB snapshot uploads do.
func (ns *Namespace) Snapshot() ([]byte, error) {
	ns.mu.Lock()
	img := nsImage{}
	for k, v := range ns.data {
		img.Data = append(img.Data, nsEntry{K: []byte(k), V: append([]byte(nil), v...)})
	}
	for k, vals := range ns.lists {
		cp := make([][]byte, len(vals))
		for i, v := range vals {
			cp[i] = append([]byte(nil), v...)
		}
		img.Lists = append(img.Lists, nsListEntry{K: []byte(k), V: cp})
	}
	stored := ns.bytes
	ns.mu.Unlock()
	sort.Slice(img.Data, func(i, j int) bool { return string(img.Data[i].K) < string(img.Data[j].K) })
	sort.Slice(img.Lists, func(i, j int) bool { return string(img.Lists[i].K) < string(img.Lists[j].K) })
	buf, err := json.Marshal(img)
	if err != nil {
		return nil, fmt.Errorf("statebackend: snapshot %s: %w", ns.name, err)
	}
	ns.chargeRead(stored)
	ns.chargeWrite(len(buf))
	return buf, nil
}

// Restore replaces the namespace's contents with a previously taken
// Snapshot image. A nil or empty image clears the namespace. The restore
// write is charged to the accounting callback.
func (ns *Namespace) Restore(buf []byte) error {
	var img nsImage
	if len(buf) > 0 {
		if err := json.Unmarshal(buf, &img); err != nil {
			return fmt.Errorf("statebackend: restore %s: %w", ns.name, err)
		}
	}
	data := make(map[string][]byte, len(img.Data))
	lists := make(map[string][][]byte, len(img.Lists))
	bytes := 0
	for _, e := range img.Data {
		v := append([]byte(nil), e.V...)
		data[string(e.K)] = v
		bytes += len(e.K) + len(v)
	}
	for _, e := range img.Lists {
		cp := make([][]byte, len(e.V))
		bytes += len(e.K)
		for i, v := range e.V {
			cp[i] = append([]byte(nil), v...)
			bytes += len(v)
		}
		lists[string(e.K)] = cp
	}
	ns.mu.Lock()
	ns.data = data
	ns.lists = lists
	ns.bytes = bytes
	ns.mu.Unlock()
	ns.chargeWrite(len(buf))
	return nil
}
