package statebackend

import (
	"encoding/json"
	"fmt"
)

// Namespace keys may contain arbitrary bytes (window keys embed big-endian
// timestamps), and JSON map keys silently mangle invalid UTF-8. The image
// therefore stores keys as []byte entries (base64 in JSON) in sorted key
// order, which keeps the encoding both binary-safe and deterministic: the
// same logical contents always produce the same bytes — the engine's
// deterministic-recovery tests rely on this.
type nsEntry struct {
	K []byte `json:"k"`
	V []byte `json:"v"`
}

type nsListEntry struct {
	K []byte   `json:"k"`
	V [][]byte `json:"v"`
}

// groupImage is one key-group's slice of a namespace image: the entries
// whose (logical) keys hash into key-group G, sorted by storage key.
type groupImage struct {
	G     int           `json:"g"`
	Data  []nsEntry     `json:"data,omitempty"`
	Lists []nsListEntry `json:"lists,omitempty"`
}

// nsImage is a namespace snapshot. Current snapshots populate Groups (the
// key-group-partitioned layout that Repartition splits and merges exactly);
// Restore also accepts the pre-key-group flat layout in Data/Lists.
type nsImage struct {
	Groups []groupImage  `json:"groups,omitempty"`
	Data   []nsEntry     `json:"data,omitempty"`
	Lists  []nsListEntry `json:"lists,omitempty"`
}

// Snapshot serializes the namespace's complete contents into a
// self-contained, deterministic byte image. The read of the stored bytes and
// the write of the image are both charged to the store's accounting callback,
// so periodic checkpoints genuinely contend for the worker's I/O bandwidth
// the way RocksDB snapshot uploads do.
func (ns *Namespace) Snapshot() ([]byte, error) {
	numGroups := ns.store.opts.NumKeyGroups
	ns.mu.Lock()
	groups := make(map[int]*decodedGroup)
	get := func(g int) *decodedGroup {
		d := groups[g]
		if d == nil {
			d = &decodedGroup{g: g}
			groups[g] = d
		}
		return d
	}
	for k, v := range ns.data {
		d := get(storageKeyGroup([]byte(k), numGroups))
		d.data = append(d.data, nsEntry{K: []byte(k), V: append([]byte(nil), v...)})
	}
	for k, vals := range ns.lists {
		cp := make([][]byte, len(vals))
		for i, v := range vals {
			cp[i] = append([]byte(nil), v...)
		}
		d := get(storageKeyGroup([]byte(k), numGroups))
		d.lists = append(d.lists, nsListEntry{K: []byte(k), V: cp})
	}
	stored := ns.bytes
	ns.mu.Unlock()
	flat := make([]*decodedGroup, 0, len(groups))
	for _, d := range groups {
		flat = append(flat, d)
	}
	buf, err := encodeGroups(flat)
	if err != nil {
		return nil, fmt.Errorf("statebackend: snapshot %s: %w", ns.name, err)
	}
	ns.chargeRead(stored)
	ns.chargeWrite(len(buf))
	return buf, nil
}

// Restore replaces the namespace's contents with a previously taken
// Snapshot image. A nil or empty image clears the namespace. The restore
// write is charged to the accounting callback.
func (ns *Namespace) Restore(buf []byte) error {
	var img nsImage
	if len(buf) > 0 {
		if err := json.Unmarshal(buf, &img); err != nil {
			return fmt.Errorf("statebackend: restore %s: %w", ns.name, err)
		}
	}
	flatData := img.Data
	flatLists := img.Lists
	for _, gi := range img.Groups {
		flatData = append(flatData, gi.Data...)
		flatLists = append(flatLists, gi.Lists...)
	}
	data := make(map[string][]byte, len(flatData))
	lists := make(map[string][][]byte, len(flatLists))
	bytes := 0
	for _, e := range flatData {
		v := append([]byte(nil), e.V...)
		data[string(e.K)] = v
		bytes += len(e.K) + len(v)
	}
	for _, e := range flatLists {
		cp := make([][]byte, len(e.V))
		bytes += len(e.K)
		for i, v := range e.V {
			cp[i] = append([]byte(nil), v...)
			bytes += len(v)
		}
		lists[string(e.K)] = cp
	}
	ns.mu.Lock()
	ns.data = data
	ns.lists = lists
	ns.bytes = bytes
	ns.mu.Unlock()
	ns.chargeWrite(len(buf))
	return nil
}
