package ds2

import (
	"fmt"

	"capsys/internal/dataflow"
)

// EvaluateFunc measures a candidate configuration and returns the metrics
// snapshot DS2 needs. Implementations typically deploy the graph (on the
// simulator or a live engine) and scrape task telemetry.
type EvaluateFunc func(g *dataflow.LogicalGraph) (Metrics, error)

// ConvergeResult reports the outcome of a convergence loop.
type ConvergeResult struct {
	// Graph is the final configuration.
	Graph *dataflow.LogicalGraph
	// Steps is the number of scaling decisions applied.
	Steps int
	// Converged reports whether the last decision requested no change.
	Converged bool
	// History records the parallelism after each applied step.
	History []map[dataflow.OperatorID]int
}

// Converge repeatedly evaluates the configuration and applies DS2 scaling
// decisions until the model requests no change or maxSteps is exhausted.
// The paper underlying DS2 ("three steps is all you need") shows that with
// accurate metrics this loop settles within a handful of iterations; the
// CAPSys paper shows that placement-induced metric distortion is what
// breaks that property.
func Converge(g *dataflow.LogicalGraph, eval EvaluateFunc, sourceTargets map[dataflow.OperatorID]float64, opts Options, maxSteps int) (*ConvergeResult, error) {
	if maxSteps < 1 {
		return nil, fmt.Errorf("ds2: maxSteps must be positive")
	}
	cur := g.Clone()
	res := &ConvergeResult{}
	for step := 0; step < maxSteps; step++ {
		m, err := eval(cur)
		if err != nil {
			return nil, err
		}
		dec, err := Scale(cur, m, sourceTargets, opts)
		if err != nil {
			return nil, err
		}
		if !dec.Changed {
			res.Converged = true
			break
		}
		cur, err = cur.Rescale(dec.Parallelism)
		if err != nil {
			return nil, err
		}
		res.Steps++
		res.History = append(res.History, dec.Parallelism)
	}
	res.Graph = cur
	return res, nil
}
