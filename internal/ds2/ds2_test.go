package ds2

import (
	"testing"

	"capsys/internal/dataflow"
)

// pipeline builds src -> op -> sink with the given parallelisms.
func pipeline(t *testing.T, pSrc, pOp, pSink int) *dataflow.LogicalGraph {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	ops := []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: pSrc, Selectivity: 1},
		{ID: "op", Kind: dataflow.KindMap, Parallelism: pOp, Selectivity: 0.5},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: pSink, Selectivity: 0},
	}
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{{From: "src", To: "op"}, {From: "op", To: "sink"}} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// uniform returns n identical task snapshots.
func uniform(n int, in, out, useful float64) []TaskRates {
	rates := make([]TaskRates, n)
	for i := range rates {
		rates[i] = TaskRates{ObservedIn: in, ObservedOut: out, UsefulFraction: useful}
	}
	return rates
}

func TestScaleUp(t *testing.T) {
	g := pipeline(t, 1, 2, 1)
	// Each op task processes 500 rec/s at 50% useful time: true rate 1000.
	m := Metrics{
		"src":  uniform(1, 1000, 1000, 0.5),
		"op":   uniform(2, 500, 250, 0.5),
		"sink": uniform(1, 500, 0, 0.25),
	}
	// Double the target: 2000 rec/s.
	dec, err := Scale(g, m, map[dataflow.OperatorID]float64{"src": 2000}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// op true per-task rate = 1000 rec/s, target in = 2000 -> parallelism 2.
	if dec.Parallelism["op"] != 2 {
		t.Errorf("op parallelism = %d, want 2", dec.Parallelism["op"])
	}
	// sink: target in = 2000*0.5 = 1000, true per-task = 500/0.25 = 2000 -> 1.
	if dec.Parallelism["sink"] != 1 {
		t.Errorf("sink parallelism = %d, want 1", dec.Parallelism["sink"])
	}
	if dec.TargetIn["sink"] != 1000 {
		t.Errorf("sink target in = %v, want 1000", dec.TargetIn["sink"])
	}
	// src: true out per task = 2000, target out 2000 -> 1.
	if dec.Parallelism["src"] != 1 {
		t.Errorf("src parallelism = %d, want 1", dec.Parallelism["src"])
	}
}

func TestScaleDown(t *testing.T) {
	g := pipeline(t, 2, 8, 2)
	m := Metrics{
		"src":  uniform(2, 500, 500, 0.25), // true out 2000/task
		"op":   uniform(8, 125, 62.5, 0.125),
		"sink": uniform(2, 250, 0, 0.1),
	}
	// op true per-task = 1000; target 1000 -> parallelism 1.
	dec, err := Scale(g, m, map[dataflow.OperatorID]float64{"src": 1000}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parallelism["op"] != 1 {
		t.Errorf("op parallelism = %d, want 1", dec.Parallelism["op"])
	}
	if !dec.Changed {
		t.Error("Changed should be true when scaling down")
	}
}

func TestStableWhenMetricsMatchTarget(t *testing.T) {
	g := pipeline(t, 1, 2, 1)
	// Tasks run at full capacity exactly meeting the rate: true == observed.
	m := Metrics{
		"src":  uniform(1, 1000, 1000, 1.0),
		"op":   uniform(2, 500, 250, 1.0),
		"sink": uniform(1, 500, 0, 1.0),
	}
	dec, err := Scale(g, m, map[dataflow.OperatorID]float64{"src": 1000}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Changed {
		t.Errorf("no change expected, got %v", dec.Parallelism)
	}
}

// Contention-inflated useful time (the paper's §6.4 failure mode) must
// produce a higher parallelism than a clean measurement of the same load.
func TestContentionCausesOverprovisioning(t *testing.T) {
	g := pipeline(t, 1, 4, 1)
	clean := Metrics{
		"src":  uniform(1, 1000, 1000, 0.5),
		"op":   uniform(4, 250, 125, 0.25), // true/task = 1000
		"sink": uniform(1, 500, 0, 0.5),
	}
	contended := Metrics{
		"src":  uniform(1, 1000, 1000, 0.5),
		"op":   uniform(4, 250, 125, 0.75), // apparent true/task = 333
		"sink": uniform(1, 500, 0, 0.5),
	}
	target := map[dataflow.OperatorID]float64{"src": 4000}
	dc, err := Scale(g, clean, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dd, err := Scale(g, contended, target, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dd.Parallelism["op"] <= dc.Parallelism["op"] {
		t.Errorf("contended estimate %d should exceed clean %d",
			dd.Parallelism["op"], dc.Parallelism["op"])
	}
}

func TestHeadroomAndMaxParallelism(t *testing.T) {
	g := pipeline(t, 1, 1, 1)
	m := Metrics{
		"src":  uniform(1, 1000, 1000, 1.0),
		"op":   uniform(1, 1000, 500, 1.0),
		"sink": uniform(1, 500, 0, 1.0),
	}
	target := map[dataflow.OperatorID]float64{"src": 10000}
	dec, err := Scale(g, m, target, Options{Headroom: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parallelism["op"] != 12 { // ceil(10000*1.2/1000)
		t.Errorf("op parallelism with headroom = %d, want 12", dec.Parallelism["op"])
	}
	dec, err = Scale(g, m, target, Options{MaxParallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Parallelism["op"] != 8 {
		t.Errorf("op parallelism capped = %d, want 8", dec.Parallelism["op"])
	}
}

func TestScaleErrors(t *testing.T) {
	g := pipeline(t, 1, 1, 1)
	ok := Metrics{
		"src":  uniform(1, 100, 100, 1),
		"op":   uniform(1, 100, 50, 1),
		"sink": uniform(1, 50, 0, 1),
	}
	if _, err := Scale(g, ok, nil, Options{}); err == nil {
		t.Error("missing source target accepted")
	}
	missing := Metrics{"src": ok["src"], "op": ok["op"]}
	if _, err := Scale(g, missing, map[dataflow.OperatorID]float64{"src": 100}, Options{}); err == nil {
		t.Error("missing operator metrics accepted")
	}
	bad := Metrics{
		"src":  ok["src"],
		"op":   uniform(1, 100, 50, 1.5),
		"sink": ok["sink"],
	}
	if _, err := Scale(g, bad, map[dataflow.OperatorID]float64{"src": 100}, Options{}); err == nil {
		t.Error("useful fraction > 1 accepted")
	}
	neg := Metrics{
		"src":  ok["src"],
		"op":   []TaskRates{{ObservedIn: -1, ObservedOut: 0, UsefulFraction: 1}},
		"sink": ok["sink"],
	}
	if _, err := Scale(g, neg, map[dataflow.OperatorID]float64{"src": 100}, Options{}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestMetricsFromObservation(t *testing.T) {
	g := pipeline(t, 1, 2, 1)
	obs := map[dataflow.TaskID]TaskRates{
		{Op: "src", Index: 0}:  {ObservedIn: 100, ObservedOut: 100, UsefulFraction: 1},
		{Op: "op", Index: 0}:   {ObservedIn: 50, ObservedOut: 25, UsefulFraction: 1},
		{Op: "op", Index: 1}:   {ObservedIn: 50, ObservedOut: 25, UsefulFraction: 1},
		{Op: "sink", Index: 0}: {ObservedIn: 50, ObservedOut: 0, UsefulFraction: 1},
	}
	m, err := MetricsFromObservation(g, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(m["op"]) != 2 {
		t.Errorf("op has %d snapshots, want 2", len(m["op"]))
	}
	delete(obs, dataflow.TaskID{Op: "sink", Index: 0})
	if _, err := MetricsFromObservation(g, obs); err == nil {
		t.Error("missing operator accepted")
	}
	obs[dataflow.TaskID{Op: "ghost", Index: 0}] = TaskRates{}
	if _, err := MetricsFromObservation(g, obs); err == nil {
		t.Error("unknown operator accepted")
	}
}
