// Package ds2 implements the DS2 auto-scaling model (Kalavri et al.,
// OSDI'18), the scaling controller CAPSys builds on.
//
// DS2 estimates, from a single snapshot of runtime metrics, the parallelism
// each operator needs to sustain a target source rate. The key idea is the
// *true* processing (and output) rate of a task: the rate the task would
// sustain if it never waited for input or backpressure, computed as the
// observed rate divided by the fraction of time the task spent doing useful
// work. True rates are propagated topologically: each operator's target input
// rate is the sum of its upstream operators' target output rates, and its new
// parallelism is the target input rate divided by the per-task true
// processing rate.
//
// DS2's accuracy therefore depends on the fidelity of the useful-time metric.
// As the CAPSys paper shows (§6.4), resource contention from poor task
// placement inflates useful time, deflating true rates and driving DS2 to
// over-provision or oscillate — which is exactly what coupling DS2 with CAPS
// placement fixes.
package ds2

import (
	"fmt"
	"math"
	"sort"

	"capsys/internal/dataflow"
)

// TaskRates is the per-task metrics snapshot DS2 consumes.
type TaskRates struct {
	// ObservedIn is the task's observed processing rate (records/s).
	ObservedIn float64
	// ObservedOut is the task's observed output rate (records/s).
	ObservedOut float64
	// UsefulFraction is the fraction of time spent processing, in (0,1].
	UsefulFraction float64
}

// Metrics maps every operator to the snapshot of its tasks.
type Metrics map[dataflow.OperatorID][]TaskRates

// Decision is the outcome of one scaling evaluation.
type Decision struct {
	// Parallelism is the recommended parallelism per operator.
	Parallelism map[dataflow.OperatorID]int
	// TargetIn is the computed target input rate per operator.
	TargetIn map[dataflow.OperatorID]float64
	// Changed reports whether any operator's parallelism differs from the
	// current graph.
	Changed bool
}

// Options configures the scaling computation.
type Options struct {
	// MaxParallelism caps per-operator parallelism (0 = unlimited).
	MaxParallelism int
	// Headroom multiplies computed parallelism requirements, e.g. 1.1
	// reserves 10% spare capacity. Values < 1 are treated as 1.
	Headroom float64
}

// Scale computes the per-operator parallelism needed to sustain the given
// source target rates, from the metrics snapshot m measured on graph g.
func Scale(g *dataflow.LogicalGraph, m Metrics, sourceTargets map[dataflow.OperatorID]float64, opts Options) (*Decision, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	headroom := opts.Headroom
	if headroom < 1 {
		headroom = 1
	}

	type opEst struct {
		trueProcPerTask float64 // records/s one task can process
		selectivity     float64 // output records per input record
	}
	est := make(map[dataflow.OperatorID]opEst, len(order))
	for _, id := range order {
		rates, ok := m[id]
		if !ok || len(rates) == 0 {
			return nil, fmt.Errorf("ds2: no metrics for operator %q", id)
		}
		var aggIn, aggOut, aggTrue float64
		for i, r := range rates {
			if r.UsefulFraction <= 0 || r.UsefulFraction > 1 {
				return nil, fmt.Errorf("ds2: operator %q task %d has useful fraction %v", id, i, r.UsefulFraction)
			}
			if r.ObservedIn < 0 || r.ObservedOut < 0 {
				return nil, fmt.Errorf("ds2: operator %q task %d has negative rates", id, i)
			}
			aggIn += r.ObservedIn
			aggOut += r.ObservedOut
			aggTrue += r.ObservedIn / r.UsefulFraction
		}
		sel := 0.0
		if aggIn > 0 {
			sel = aggOut / aggIn
		} else if len(g.Upstream(id)) == 0 && aggOut > 0 {
			// Generator sources have no observable input (the live engine
			// reports in=0 for them, the simulator in=out); their target
			// output IS the target rate, i.e. selectivity 1. Without this
			// every downstream target would collapse to zero.
			sel = 1
		}
		est[id] = opEst{
			trueProcPerTask: aggTrue / float64(len(rates)),
			selectivity:     sel,
		}
	}

	dec := &Decision{
		Parallelism: make(map[dataflow.OperatorID]int, len(order)),
		TargetIn:    make(map[dataflow.OperatorID]float64, len(order)),
	}
	targetOut := make(map[dataflow.OperatorID]float64, len(order))
	for _, id := range order {
		op := g.Operator(id)
		var targetIn float64
		if ups := g.Upstream(id); len(ups) == 0 {
			r, ok := sourceTargets[id]
			if !ok {
				return nil, fmt.Errorf("ds2: no target rate for source %q", id)
			}
			targetIn = r
		} else {
			for _, u := range ups {
				targetIn += targetOut[u]
			}
		}
		dec.TargetIn[id] = targetIn
		e := est[id]
		p := op.Parallelism
		if len(g.Upstream(id)) == 0 {
			// Sources are generators: their parallelism is determined by
			// the true output rate a single source task can sustain.
			rates := m[id]
			var aggTrueOut float64
			for _, r := range rates {
				aggTrueOut += r.ObservedOut / r.UsefulFraction
			}
			perTask := aggTrueOut / float64(len(rates))
			p = need(targetIn*e.selectivity, perTask, headroom)
		} else {
			p = need(targetIn, e.trueProcPerTask, headroom)
		}
		if opts.MaxParallelism > 0 && p > opts.MaxParallelism {
			p = opts.MaxParallelism
		}
		if p < 1 {
			p = 1
		}
		dec.Parallelism[id] = p
		if p != op.Parallelism {
			dec.Changed = true
		}
		// The operator's achievable output at the chosen parallelism is
		// capped by its true capacity; DS2 propagates the *target* output,
		// assuming the recommended parallelism will be applied.
		targetOut[id] = targetIn * e.selectivity
	}
	return dec, nil
}

// need returns ceil(rate / perTask * headroom), handling degenerate
// capacities.
func need(rate, perTask, headroom float64) int {
	if rate <= 0 {
		return 1
	}
	if perTask <= 0 || math.IsInf(perTask, 1) {
		if math.IsInf(perTask, 1) {
			return 1 // infinite capacity: one task suffices
		}
		return 1
	}
	return int(math.Ceil(rate * headroom / perTask))
}

// MetricsFromObservation converts a map of per-task observations keyed by
// task ID into the per-operator Metrics layout. Tasks are visited in sorted
// key order so each operator's slice — and every float accumulation derived
// from it — comes out identical across runs.
func MetricsFromObservation(g *dataflow.LogicalGraph, obs map[dataflow.TaskID]TaskRates) (Metrics, error) {
	keys := make([]dataflow.TaskID, 0, len(obs))
	for t := range obs {
		keys = append(keys, t)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Op != keys[j].Op {
			return keys[i].Op < keys[j].Op
		}
		return keys[i].Index < keys[j].Index
	})
	m := make(Metrics, g.NumOperators())
	for _, t := range keys {
		if g.Operator(t.Op) == nil {
			return nil, fmt.Errorf("ds2: observation for unknown operator %q", t.Op)
		}
		m[t.Op] = append(m[t.Op], obs[t])
	}
	for _, op := range g.Operators() {
		if len(m[op.ID]) == 0 {
			return nil, fmt.Errorf("ds2: no observations for operator %q", op.ID)
		}
	}
	return m, nil
}
