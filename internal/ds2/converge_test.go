package ds2

import (
	"fmt"
	"testing"

	"capsys/internal/dataflow"
)

// analyticEval models a system where every task of op has a fixed true
// processing capacity; observed rates are min(offered, capacity) and useful
// time reflects the offered load.
func analyticEval(capacity map[dataflow.OperatorID]float64, sourceRates map[dataflow.OperatorID]float64) EvaluateFunc {
	return func(g *dataflow.LogicalGraph) (Metrics, error) {
		rates, err := dataflow.PropagateRates(g, sourceRates)
		if err != nil {
			return nil, err
		}
		m := make(Metrics)
		for _, op := range g.Operators() {
			perTaskIn := rates.TaskInRate(g, op.ID)
			cap := capacity[op.ID]
			obs := perTaskIn
			if obs > cap {
				obs = cap
			}
			useful := obs / cap
			if useful <= 0 {
				useful = 1e-9
			}
			if useful > 1 {
				useful = 1
			}
			for i := 0; i < op.Parallelism; i++ {
				m[op.ID] = append(m[op.ID], TaskRates{
					ObservedIn:     obs,
					ObservedOut:    obs * op.Selectivity,
					UsefulFraction: useful,
				})
			}
		}
		return m, nil
	}
}

func convergeGraph(t *testing.T) *dataflow.LogicalGraph {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	for _, op := range []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1},
		{ID: "op", Kind: dataflow.KindMap, Parallelism: 1, Selectivity: 0.5},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 1},
	} {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{{From: "src", To: "op"}, {From: "op", To: "sink"}} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// With accurate metrics, DS2 converges in few steps ("three steps is all
// you need").
func TestConvergeFewSteps(t *testing.T) {
	g := convergeGraph(t)
	capacity := map[dataflow.OperatorID]float64{"src": 10000, "op": 450, "sink": 2000}
	targets := map[dataflow.OperatorID]float64{"src": 4000}
	res, err := Converge(g, analyticEval(capacity, targets), targets, Options{MaxParallelism: 32}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge; history %v", res.History)
	}
	if res.Steps > 3 {
		t.Errorf("took %d steps, want <= 3", res.Steps)
	}
	// op needs ceil(4000/450) = 9 tasks.
	if p := res.Graph.Operator("op").Parallelism; p != 9 {
		t.Errorf("op parallelism = %d, want 9", p)
	}
}

func TestConvergeAlreadyOptimal(t *testing.T) {
	g := convergeGraph(t)
	rescaled, err := g.Rescale(map[dataflow.OperatorID]int{"op": 9})
	if err != nil {
		t.Fatal(err)
	}
	capacity := map[dataflow.OperatorID]float64{"src": 10000, "op": 450, "sink": 2000}
	targets := map[dataflow.OperatorID]float64{"src": 4000}
	res, err := Converge(rescaled, analyticEval(capacity, targets), targets, Options{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 0 || !res.Converged {
		t.Errorf("steps = %d converged = %v for optimal start", res.Steps, res.Converged)
	}
}

func TestConvergeValidation(t *testing.T) {
	g := convergeGraph(t)
	if _, err := Converge(g, nil, nil, Options{}, 0); err == nil {
		t.Error("zero maxSteps accepted")
	}
	failing := func(*dataflow.LogicalGraph) (Metrics, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, err := Converge(g, failing, map[dataflow.OperatorID]float64{"src": 1}, Options{}, 3); err == nil {
		t.Error("evaluate error swallowed")
	}
}
