package metrics

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"capsys/internal/clock"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc(3)
	c.Inc(4)
	if c.Value() != 7 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 10000 {
		t.Errorf("Value = %d, want 10000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Errorf("zero gauge = %v", g.Value())
	}
	g.Set(3.14)
	if g.Value() != 3.14 {
		t.Errorf("Value = %v", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Errorf("Value = %v", g.Value())
	}
}

func TestTimeAccumulator(t *testing.T) {
	var ta TimeAccumulator
	ta.Add(100 * time.Millisecond)
	ta.Add(150 * time.Millisecond)
	if ta.Total() != 250*time.Millisecond {
		t.Errorf("Total = %v", ta.Total())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Mark(10)
	m.Mark(5)
	if m.Count() != 15 {
		t.Errorf("Count = %d", m.Count())
	}
	if r := m.RateOver(3 * time.Second); r != 5 {
		t.Errorf("RateOver = %v, want 5", r)
	}
	if r := m.RateOver(0); r != 0 {
		t.Errorf("RateOver(0) = %v", r)
	}
	if m.Rate() < 0 {
		t.Error("negative rate")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc(2)
	r.Gauge("b").Set(1.5)
	r.Meter("c").Mark(7)
	r.Time("d").Add(2 * time.Second)

	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("b") != r.Gauge("b") || r.Meter("c") != r.Meter("c") || r.Time("d") != r.Time("d") {
		t.Error("registry getters not idempotent")
	}
	snap := r.Snapshot()
	if snap["a"] != 2 || snap["b"] != 1.5 || snap["d"] != 2 {
		t.Errorf("Snapshot = %v", snap)
	}
	// Meters export distinguishable count and rate keys, never a bare count.
	if _, ok := snap["c"]; ok {
		t.Error("meter exported under its bare name")
	}
	if snap["c.count"] != 7 {
		t.Errorf("c.count = %v, want 7", snap["c.count"])
	}
	if rate, ok := snap["c.rate"]; !ok || rate < 0 {
		t.Errorf("c.rate = %v, %v", rate, ok)
	}
	names := r.Names()
	want := []string{"a", "b", "c.count", "c.rate", "d"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	kinds := r.Kinds()
	wantKinds := map[string]Kind{
		"a": KindCounter, "b": KindGauge,
		"c.count": KindCounter, "c.rate": KindGauge,
		"d": KindCounter,
	}
	for n, k := range wantKinds {
		if kinds[n] != k {
			t.Errorf("Kinds[%q] = %v, want %v", n, kinds[n], k)
		}
	}
	if len(kinds) != len(wantKinds) {
		t.Errorf("Kinds = %v", kinds)
	}
}

func TestTaskMetricName(t *testing.T) {
	if got := TaskMetricName("win", 3, "records_in"); got != "win[3].records_in" {
		t.Errorf("TaskMetricName = %q", got)
	}
}

func TestParseTaskMetricName(t *testing.T) {
	// Round-trip through TaskMetricName, including qualified operator IDs.
	for _, tc := range []TaskMetric{
		{Op: "win", Index: 3, Metric: "records_in"},
		{Op: "Q2-join/src-person", Index: 0, Metric: "busy_seconds"},
		{Op: "op", Index: 12, Metric: "useful_fraction"},
	} {
		name := TaskMetricName(tc.Op, tc.Index, tc.Metric)
		got, ok := ParseTaskMetricName(name)
		if !ok || got != tc {
			t.Errorf("ParseTaskMetricName(%q) = %v, %v; want %v", name, got, ok, tc)
		}
	}
	for _, bad := range []string{
		"job.recoveries", "", "win[3]", "win[3].", "[3].x",
		"win[x].records_in", "win[-1].records_in", "win3].records_in",
	} {
		if got, ok := ParseTaskMetricName(bad); ok {
			t.Errorf("ParseTaskMetricName(%q) = %v, want no parse", bad, got)
		}
	}
}

// TestRegistryConcurrent hammers every metric type from parallel goroutines
// while snapshots are taken, asserting that counter-like series observed in
// successive snapshots never move backwards (no torn reads).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		prev := map[string]float64{}
		for {
			snap := r.Snapshot()
			for _, key := range []string{"hits", "m.count", "busy"} {
				if snap[key] < prev[key] {
					snapErr = fmt.Errorf("%s went backwards: %v -> %v", key, prev[key], snap[key])
					return
				}
			}
			prev = snap
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				r.Counter("hits").Inc(1)
				r.Meter("m").Mark(2)
				r.Gauge("level").Set(float64(j))
				r.Time("busy").Add(time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	snap := r.Snapshot()
	if snap["hits"] != workers*perWorker {
		t.Errorf("hits = %v, want %d", snap["hits"], workers*perWorker)
	}
	if snap["m.count"] != 2*workers*perWorker {
		t.Errorf("m.count = %v, want %d", snap["m.count"], 2*workers*perWorker)
	}
}

func TestMeterInjectedClock(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	// Step clock: construction reads once (epoch = base), Rate reads again
	// (base + 2s), so 10 events over exactly 2 seconds.
	m := NewMeterAt(clock.Step(base, 2*time.Second))
	m.Mark(10)
	if got := m.Rate(); got != 5 {
		t.Errorf("Rate = %v, want 5 (10 events / 2s step)", got)
	}
	// A frozen clock yields zero elapsed: Rate reports 0, not +Inf.
	f := NewMeterAt(clock.Fixed(base))
	f.Mark(100)
	if got := f.Rate(); got != 0 {
		t.Errorf("Rate under frozen clock = %v, want 0", got)
	}
}

func TestRegistryInjectedClock(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	r := NewRegistryAt(clock.Step(base, time.Second))
	r.Meter("events").Mark(3)
	snap := r.Snapshot()
	if snap["events.count"] != 3 {
		t.Errorf("events.count = %v", snap["events.count"])
	}
	// The meter consumed one clock tick at creation; Snapshot's Rate call is
	// the second read, one second later — a deterministic 3 events/sec.
	if snap["events.rate"] != 3 {
		t.Errorf("events.rate = %v, want deterministic 3", snap["events.rate"])
	}
}
