package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc(3)
	c.Inc(4)
	if c.Value() != 7 {
		t.Errorf("Value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 10000 {
		t.Errorf("Value = %d, want 10000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Errorf("zero gauge = %v", g.Value())
	}
	g.Set(3.14)
	if g.Value() != 3.14 {
		t.Errorf("Value = %v", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Errorf("Value = %v", g.Value())
	}
}

func TestTimeAccumulator(t *testing.T) {
	var ta TimeAccumulator
	ta.Add(100 * time.Millisecond)
	ta.Add(150 * time.Millisecond)
	if ta.Total() != 250*time.Millisecond {
		t.Errorf("Total = %v", ta.Total())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Mark(10)
	m.Mark(5)
	if m.Count() != 15 {
		t.Errorf("Count = %d", m.Count())
	}
	if r := m.RateOver(3 * time.Second); r != 5 {
		t.Errorf("RateOver = %v, want 5", r)
	}
	if r := m.RateOver(0); r != 0 {
		t.Errorf("RateOver(0) = %v", r)
	}
	if m.Rate() < 0 {
		t.Error("negative rate")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc(2)
	r.Gauge("b").Set(1.5)
	r.Meter("c").Mark(7)
	r.Time("d").Add(2 * time.Second)

	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("b") != r.Gauge("b") || r.Meter("c") != r.Meter("c") || r.Time("d") != r.Time("d") {
		t.Error("registry getters not idempotent")
	}
	snap := r.Snapshot()
	if snap["a"] != 2 || snap["b"] != 1.5 || snap["c"] != 7 || snap["d"] != 2 {
		t.Errorf("Snapshot = %v", snap)
	}
	names := r.Names()
	want := []string{"a", "b", "c", "d"}
	if len(names) != 4 {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestTaskMetricName(t *testing.T) {
	if got := TaskMetricName("win", 3, "records_in"); got != "win[3].records_in" {
		t.Errorf("TaskMetricName = %q", got)
	}
}
