// Package metrics provides the lightweight instrumentation primitives used
// by the engine and the CAPSys metrics collector: atomic counters, gauges,
// elapsed-time meters and a named registry with consistent snapshots.
//
// The design mirrors what the paper's metrics collector scrapes from Flink
// Task Managers: monotonic record counters, busy/idle time accumulators (the
// basis of DS2's useful-time fractions), and byte counters for network and
// state access.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"capsys/internal/clock"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds n (n may be any non-negative value).
func (c *Counter) Inc(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// TimeAccumulator accumulates durations (e.g. busy time) atomically.
type TimeAccumulator struct {
	ns atomic.Int64
}

// Add accumulates d.
func (t *TimeAccumulator) Add(d time.Duration) { t.ns.Add(int64(d)) }

// Total returns the accumulated duration.
func (t *TimeAccumulator) Total() time.Duration { return time.Duration(t.ns.Load()) }

// Meter tracks a count over clock time and reports an average rate.
type Meter struct {
	count atomic.Int64
	start time.Time
	clk   clock.Clock
}

// NewMeter creates a meter on the system clock with its epoch set to now.
func NewMeter() *Meter { return NewMeterAt(nil) }

// NewMeterAt creates a meter on the given clock (nil = system) with its
// epoch set to the clock's current reading. Injecting clock.Fixed or
// clock.Step makes Rate deterministic for tests and replayers.
func NewMeterAt(clk clock.Clock) *Meter {
	clk = clk.OrSystem()
	return &Meter{start: clk(), clk: clk}
}

// Mark records n events.
func (m *Meter) Mark(n int64) { m.count.Add(n) }

// Count returns the number of events marked.
func (m *Meter) Count() int64 { return m.count.Load() }

// Rate returns events per second since the meter's epoch.
func (m *Meter) Rate() float64 {
	el := m.clk.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.count.Load()) / el
}

// RateOver returns events per second over an externally supplied elapsed
// duration (used when the caller controls the measurement window).
func (m *Meter) RateOver(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count.Load()) / elapsed.Seconds()
}

// Registry is a named collection of metrics with consistent snapshots.
type Registry struct {
	mu       sync.Mutex
	clk      clock.Clock
	counters map[string]*Counter
	gauges   map[string]*Gauge
	meters   map[string]*Meter
	times    map[string]*TimeAccumulator
}

// NewRegistry creates an empty registry on the system clock.
func NewRegistry() *Registry { return NewRegistryAt(nil) }

// NewRegistryAt creates an empty registry whose meters read the given clock
// (nil = system).
func NewRegistryAt(clk clock.Clock) *Registry {
	return &Registry{
		clk:      clk.OrSystem(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		meters:   make(map[string]*Meter),
		times:    make(map[string]*TimeAccumulator),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Meter returns (creating if needed) the named meter.
func (r *Registry) Meter(name string) *Meter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.meters[name]
	if !ok {
		m = NewMeterAt(r.clk)
		r.meters[name] = m
	}
	return m
}

// Time returns (creating if needed) the named time accumulator.
func (r *Registry) Time(name string) *TimeAccumulator {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.times[name]
	if !ok {
		t = &TimeAccumulator{}
		r.times[name] = t
	}
	return t
}

// Snapshot returns all metric values keyed by name. Counters export their
// counts; gauges their value; time accumulators their seconds. Meters export
// two keys — "<name>.count" (events marked) and "<name>.rate" (events per
// second since the meter's epoch) — so consumers can tell counts from rates
// without re-deriving either.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.meters)+len(r.times))
	for n, c := range r.counters {
		out[n] = float64(c.Value())
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	//capslint:allow determinism injective rebuild: every map key derives two distinct output keys, so order cannot leak
	for n, m := range r.meters {
		out[n+".count"] = float64(m.Count())
		out[n+".rate"] = m.Rate()
	}
	for n, t := range r.times {
		out[n] = t.Total().Seconds()
	}
	return out
}

// TypedValues is a Registry snapshot split by primitive type. Snapshot()
// flattens everything to float64 for reporting; consumers that must
// re-apply values into another registry with the right semantics — the
// cluster aggregation plane delta-encodes counters and time accumulators
// but ships gauges as absolutes — need the taxonomy preserved. Meter
// counts appear under "<name>.count" beside plain counters (rates are
// derived, never shipped).
type TypedValues struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Times    map[string]time.Duration
}

// TypedSnapshot returns a consistent typed snapshot of the registry.
func (r *Registry) TypedSnapshot() TypedValues {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := TypedValues{
		Counters: make(map[string]int64, len(r.counters)+len(r.meters)),
		Gauges:   make(map[string]float64, len(r.gauges)),
		Times:    make(map[string]time.Duration, len(r.times)),
	}
	for n, c := range r.counters {
		out.Counters[n] = c.Value()
	}
	//capslint:allow determinism injective rebuild keyed by the derived "<name>.count", so order cannot leak
	for n, m := range r.meters {
		out.Counters[n+".count"] = m.Count()
	}
	for n, g := range r.gauges {
		out.Gauges[n] = g.Value()
	}
	for n, t := range r.times {
		out.Times[n] = t.Total()
	}
	return out
}

// Kind classifies a snapshot entry for exporters that must distinguish
// monotone series from point-in-time values.
type Kind int

const (
	// KindCounter marks monotonically increasing values (counters, meter
	// counts and time accumulators).
	KindCounter Kind = iota
	// KindGauge marks point-in-time values (gauges and meter rates).
	KindGauge
)

// Kinds returns, for every key Snapshot would emit, whether it is a monotone
// counter-like series or a point-in-time gauge.
func (r *Registry) Kinds() map[string]Kind {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Kind, len(r.counters)+len(r.gauges)+2*len(r.meters)+len(r.times))
	for n := range r.counters {
		out[n] = KindCounter
	}
	for n := range r.gauges {
		out[n] = KindGauge
	}
	//capslint:allow determinism injective rebuild: every map key derives two distinct output keys, so order cannot leak
	for n := range r.meters {
		out[n+".count"] = KindCounter
		out[n+".rate"] = KindGauge
	}
	for n := range r.times {
		out[n] = KindCounter
	}
	return out
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TaskMetricName builds the canonical per-task metric name, e.g.
// "win[3].records_in".
func TaskMetricName(op string, index int, metric string) string {
	return fmt.Sprintf("%s[%d].%s", op, index, metric)
}

// TaskMetric is the parsed form of a canonical per-task metric name.
type TaskMetric struct {
	Op     string
	Index  int
	Metric string
}

// WorkerMetricName builds the canonical per-worker metric name used by the
// cluster aggregation plane, e.g. "worker.w1.net.frames_sent": a worker's
// series lands in the coordinator registry under its cluster-spec worker
// ID. Worker IDs must not contain dots (cluster validation enforces the
// IDs the engine uses; ParseWorkerMetricName splits at the first dot).
func WorkerMetricName(worker, metric string) string {
	return "worker." + worker + "." + metric
}

// ClusterMetricName builds the cluster-rollup name for a worker series,
// e.g. "cluster.net.frames_sent" — the sum across workers of the same
// monotone series.
func ClusterMetricName(metric string) string {
	return "cluster." + metric
}

// WorkerMetric is the parsed form of a canonical per-worker metric name.
type WorkerMetric struct {
	Worker string
	Metric string
}

// ParseWorkerMetricName is the inverse of WorkerMetricName. The second
// return is false for names without the "worker.<id>." shape.
func ParseWorkerMetricName(name string) (WorkerMetric, bool) {
	rest, ok := strings.CutPrefix(name, "worker.")
	if !ok {
		return WorkerMetric{}, false
	}
	worker, metric, ok := strings.Cut(rest, ".")
	if !ok || worker == "" || metric == "" {
		return WorkerMetric{}, false
	}
	return WorkerMetric{Worker: worker, Metric: metric}, true
}

// ParseTaskMetricName is the inverse of TaskMetricName: it splits
// "win[3].records_in" into its operator, task index and metric parts. The
// second return is false for names that are not per-task metrics (job-level
// series like "job.recoveries", malformed brackets, negative or non-numeric
// indices).
func ParseTaskMetricName(name string) (TaskMetric, bool) {
	open := strings.IndexByte(name, '[')
	if open <= 0 {
		return TaskMetric{}, false
	}
	rest := name[open+1:]
	close := strings.Index(rest, "].")
	if close < 0 {
		return TaskMetric{}, false
	}
	idx, err := strconv.Atoi(rest[:close])
	if err != nil || idx < 0 {
		return TaskMetric{}, false
	}
	// Accept only the canonical digit rendering ("3", not "03" or "+3"), so
	// parsing is a true inverse of TaskMetricName: rebuilding an accepted
	// name reproduces it byte for byte.
	if strconv.Itoa(idx) != rest[:close] {
		return TaskMetric{}, false
	}
	metric := rest[close+2:]
	if metric == "" {
		return TaskMetric{}, false
	}
	return TaskMetric{Op: name[:open], Index: idx, Metric: metric}, true
}
