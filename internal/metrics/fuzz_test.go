package metrics

import (
	"strings"
	"testing"
)

// FuzzParseTaskMetricName proves ParseTaskMetricName is a true inverse of
// TaskMetricName in both directions:
//
//   - Any accepted name rebuilds byte-for-byte (parsing accepts only the
//     canonical rendering — no "[01]" or "[+1]" indices).
//   - Any canonical name built from parseable parts (operator without '[',
//     non-negative index, non-empty metric) parses back to exactly those
//     parts.
func FuzzParseTaskMetricName(f *testing.F) {
	f.Add("win[3].records_in")
	f.Add("src[0].bp_time")
	f.Add("a[01].m")
	f.Add("a[+1].m")
	f.Add("job.recoveries")
	f.Add("deeply[2].dotted.metric.name")
	f.Fuzz(func(t *testing.T, name string) {
		m, ok := ParseTaskMetricName(name)
		if ok {
			if rebuilt := TaskMetricName(m.Op, m.Index, m.Metric); rebuilt != name {
				t.Fatalf("parse(%q) = %+v, but rebuild gives %q", name, m, rebuilt)
			}
		}
	})
}

// FuzzTaskMetricNameInverse fuzzes the build->parse direction over the parts
// domain.
func FuzzTaskMetricNameInverse(f *testing.F) {
	f.Add("win", 3, "records_in")
	f.Add("op", 0, "x")
	f.Add("a].b", 7, "m[0].n")
	f.Fuzz(func(t *testing.T, op string, index int, metric string) {
		// Outside this domain TaskMetricName produces names that are not
		// per-task metric names (or that parse differently), by design.
		if op == "" || strings.ContainsRune(op, '[') || index < 0 || metric == "" {
			return
		}
		name := TaskMetricName(op, index, metric)
		m, ok := ParseTaskMetricName(name)
		if !ok {
			t.Fatalf("canonical name %q did not parse", name)
		}
		if m.Op != op || m.Index != index || m.Metric != metric {
			t.Fatalf("round trip changed parts: built from (%q,%d,%q), parsed %+v", op, index, metric, m)
		}
	})
}
