package nexmark

import (
	"context"
	"fmt"
	"testing"

	"capsys/internal/dataflow"
	"capsys/internal/engine"
	"capsys/internal/simulator"
)

// bigEngineCluster builds engine workers with effectively unlimited
// resources so functional tests are not timing-bound.
func bigEngineCluster(workers, slots int) engine.ClusterSpec {
	spec := engine.ClusterSpec{}
	for i := 0; i < workers; i++ {
		spec.Workers = append(spec.Workers, engine.WorkerSpec{
			ID: fmt.Sprintf("w%d", i), Slots: slots, Cores: 1e9, IOBps: 1e15, NetBps: 1e15,
		})
	}
	return spec
}

func spreadEnginePlan(t *testing.T, g *dataflow.LogicalGraph, numWorkers int) *dataflow.Plan {
	t.Helper()
	phys, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	pl := dataflow.NewPlan()
	counts := make([]int, numWorkers)
	for _, op := range g.Operators() {
		for _, task := range phys.TasksOf(op.ID) {
			best := 0
			for w := 1; w < numWorkers; w++ {
				if counts[w] < counts[best] {
					best = w
				}
			}
			pl.Assign(task, best)
			counts[best]++
		}
	}
	return pl
}

// Every benchmark query runs end-to-end on the live engine: the pipeline
// drains, sinks absorb records, and stateful stages produce output.
func TestAllQueriesRunOnEngine(t *testing.T) {
	for _, spec := range AllQueries() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			binding, err := BindEngine(spec, 17)
			if err != nil {
				t.Fatal(err)
			}
			// Neutralize the heavy profiled CPU costs: functional test, not
			// a performance run.
			for op := range binding.PerRecordCPU {
				binding.PerRecordCPU[op] = 0
			}
			plan := spreadEnginePlan(t, spec.Graph, 4)
			job, err := engine.NewJob(spec.Graph, plan, bigEngineCluster(4, 6), binding.Factories, engine.JobOptions{
				RecordsPerSource: 1500,
				Stateful:         binding.Stateful,
				PerRecordCPU:     binding.PerRecordCPU,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := job.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.SourceRecords == 0 {
				t.Fatal("no source records")
			}
			if res.SinkRecords == 0 {
				t.Errorf("%s: sink received nothing", spec.Name)
			}
			// Every task was instantiated and reported stats.
			phys, err := dataflow.Expand(spec.Graph)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Tasks) != phys.NumTasks() {
				t.Errorf("stats for %d tasks, want %d", len(res.Tasks), phys.NumTasks())
			}
		})
	}
}

func TestBindEngineUnknownQuery(t *testing.T) {
	if _, err := BindEngine(QuerySpec{Name: "Q99"}, 0); err == nil {
		t.Error("unknown query accepted")
	}
}

// Cross-validation: the live engine and the analytical simulator agree on
// the *ordering* of placement plans. A plan that packs the heavy operator
// must lose on both substrates.
func TestEngineSimulatorCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	spec := Q1Sliding()
	phys, err := dataflow.Expand(spec.Graph)
	if err != nil {
		t.Fatal(err)
	}
	ref := ReferenceCluster()
	slots, _ := ref.SlotsPerWorker()

	spread := spreadEnginePlan(t, spec.Graph, ref.NumWorkers())
	packed := FlinkWorstCase(phys, slots)

	// Simulator verdict.
	simTput := func(pl *dataflow.Plan) float64 {
		res, err := simulator.Evaluate([]simulator.QueryDeployment{{
			Name: spec.Name, Phys: phys, Plan: pl, SourceRates: spec.SourceRates,
		}}, ref, simulator.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Queries[spec.Name].Throughput
	}
	if simTput(spread) <= simTput(packed) {
		t.Fatalf("simulator: spread %v <= packed %v", simTput(spread), simTput(packed))
	}

	// Engine verdict: same query on constrained workers. The profiled CPU
	// costs are scaled up so the metered per-record cost dominates the
	// operators' real (unmetered) Go work — otherwise both plans hit the
	// same placement-independent ceiling and the comparison is noise.
	binding, err := BindEngine(spec, 23)
	if err != nil {
		t.Fatal(err)
	}
	for op := range binding.PerRecordCPU {
		binding.PerRecordCPU[op] *= 4
	}
	engCluster := engine.ClusterSpec{}
	for i := 0; i < ref.NumWorkers(); i++ {
		engCluster.Workers = append(engCluster.Workers, engine.WorkerSpec{
			ID: fmt.Sprintf("w%d", i), Slots: slots,
			Cores: 1.0, IOBps: 50e6, NetBps: 1e9,
		})
	}
	run := func(pl *dataflow.Plan) float64 {
		job, err := engine.NewJob(spec.Graph, pl, engCluster, binding.Factories, engine.JobOptions{
			RecordsPerSource: 800,
			Stateful:         binding.Stateful,
			PerRecordCPU:     binding.PerRecordCPU,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.SourceRecords) / res.Elapsed.Seconds()
	}
	spreadTput := run(spread)
	packedTput := run(packed)
	if spreadTput <= packedTput {
		t.Errorf("engine: spread %v rec/s <= packed %v rec/s (disagrees with simulator)", spreadTput, packedTput)
	}
}
