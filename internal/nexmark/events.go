// Package nexmark provides a Nexmark-style event generator and the six
// benchmark queries used in the CAPSys evaluation (§6.1): Q1-sliding,
// Q2-join, Q3-inf, Q4-join, Q5-aggregate and Q6-session. Q1, Q2, Q4, Q5 and
// Q6 correspond to Nexmark queries Q5, Q8, Q3, Q6 and Q11 respectively;
// Q3-inf is the image-inference pipeline from the Crayfish study.
//
// The generator produces the standard Nexmark auction-site event mix
// (persons, auctions, bids) from a deterministic PRNG, so experiments are
// reproducible. Query definitions carry the logical dataflow graph, default
// parallelism (as assigned by DS2 for the paper's 16-slot reference
// cluster), per-operator unit resource costs (as measured by the CAPSys
// profiling phase), and the target input rate that saturates the reference
// cluster.
package nexmark

import (
	"fmt"
	"math/rand"
)

// EventKind discriminates generated events.
type EventKind int

const (
	// PersonEvent announces a new bidder/seller registration.
	PersonEvent EventKind = iota
	// AuctionEvent opens a new auction.
	AuctionEvent
	// BidEvent places a bid on an open auction.
	BidEvent
)

func (k EventKind) String() string {
	switch k {
	case PersonEvent:
		return "person"
	case AuctionEvent:
		return "auction"
	case BidEvent:
		return "bid"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Person is a new account registration.
type Person struct {
	ID    int64
	Name  string
	Email string
	City  string
	State string
	// Timestamp is the event time in milliseconds.
	Timestamp int64
}

// Auction opens an item for bidding.
type Auction struct {
	ID         int64
	ItemName   string
	InitialBid int64
	Reserve    int64
	Seller     int64
	Category   int
	Timestamp  int64
	// Expires is the auction close time in milliseconds.
	Expires int64
}

// Bid is an offer on an auction.
type Bid struct {
	Auction   int64
	Bidder    int64
	Price     int64
	Timestamp int64
}

// Event is one element of the generated stream; exactly one of the payload
// pointers is non-nil, matching Kind.
type Event struct {
	Kind    EventKind
	Person  *Person
	Auction *Auction
	Bid     *Bid
	// Timestamp is the event time in milliseconds.
	Timestamp int64
}

// Standard Nexmark event mix: out of every 50 events, 1 person, 3 auctions,
// 46 bids.
const (
	personProportion  = 1
	auctionProportion = 3
	bidProportion     = 46
	totalProportion   = personProportion + auctionProportion + bidProportion
)

var (
	firstNames = []string{"Peter", "Paul", "Luke", "John", "Saul", "Vicky", "Kate", "Julie", "Sarah", "Deiter", "Walter"}
	lastNames  = []string{"Shultz", "Abrams", "Spencer", "White", "Bartels", "Walton", "Smith", "Jones", "Noris"}
	cities     = []string{"Phoenix", "Los Angeles", "San Francisco", "Boise", "Portland", "Bend", "Redmond", "Seattle", "Kent", "Cheyenne"}
	states     = []string{"AZ", "CA", "ID", "OR", "WA", "WY"}
	items      = []string{"vase", "lamp", "sofa", "chair", "table", "rug", "print", "clock", "mirror", "shelf"}
)

// Generator produces a deterministic Nexmark event stream.
type Generator struct {
	rng       *rand.Rand
	seq       int64
	now       int64 // event time in ms
	interval  int64 // ms between events
	numPeople int64
	numAucts  int64
}

// NewGenerator creates a generator seeded with seed, emitting events with
// the given event-time spacing in milliseconds (0 means 1ms).
func NewGenerator(seed int64, intervalMS int64) *Generator {
	if intervalMS <= 0 {
		intervalMS = 1
	}
	return &Generator{
		rng:      rand.New(rand.NewSource(seed)),
		interval: intervalMS,
	}
}

// Next produces the next event in the standard Nexmark mix.
func (g *Generator) Next() Event {
	slot := g.seq % totalProportion
	g.seq++
	g.now += g.interval
	switch {
	case slot < personProportion:
		p := g.nextPerson()
		return Event{Kind: PersonEvent, Person: p, Timestamp: p.Timestamp}
	case slot < personProportion+auctionProportion:
		a := g.nextAuction()
		return Event{Kind: AuctionEvent, Auction: a, Timestamp: a.Timestamp}
	default:
		b := g.nextBid()
		return Event{Kind: BidEvent, Bid: b, Timestamp: b.Timestamp}
	}
}

// NextPerson produces a person registration, advancing event time.
func (g *Generator) NextPerson() *Person {
	g.now += g.interval
	return g.nextPerson()
}

// NextAuction produces an auction opening, advancing event time.
func (g *Generator) NextAuction() *Auction {
	g.now += g.interval
	return g.nextAuction()
}

// NextBid produces a bid, advancing event time. The referenced person and
// auction populations grow alongside the bid stream (one new auction per 10
// bids, one new person per 25), keeping the key space realistic for
// bid-only pipelines — without this, every bid would reference auction 0
// and hash-partitioned downstream operators would collapse onto one task.
func (g *Generator) NextBid() *Bid {
	if g.numPeople == 0 || g.seq%25 == 0 {
		g.nextPerson()
	}
	if g.numAucts == 0 || g.seq%10 == 0 {
		g.nextAuction()
	}
	g.seq++
	g.now += g.interval
	return g.nextBid()
}

func (g *Generator) nextPerson() *Person {
	id := g.numPeople
	g.numPeople++
	name := firstNames[g.rng.Intn(len(firstNames))] + " " + lastNames[g.rng.Intn(len(lastNames))]
	return &Person{
		ID:        id,
		Name:      name,
		Email:     fmt.Sprintf("%s_%d@example.com", lastNames[g.rng.Intn(len(lastNames))], id),
		City:      cities[g.rng.Intn(len(cities))],
		State:     states[g.rng.Intn(len(states))],
		Timestamp: g.now,
	}
}

func (g *Generator) nextAuction() *Auction {
	id := g.numAucts
	g.numAucts++
	seller := int64(0)
	if g.numPeople > 0 {
		seller = g.rng.Int63n(g.numPeople)
	}
	initial := 1 + g.rng.Int63n(1000)
	return &Auction{
		ID:         id,
		ItemName:   items[g.rng.Intn(len(items))],
		InitialBid: initial,
		Reserve:    initial + g.rng.Int63n(1000),
		Seller:     seller,
		Category:   g.rng.Intn(10),
		Timestamp:  g.now,
		Expires:    g.now + 10_000 + g.rng.Int63n(60_000),
	}
}

func (g *Generator) nextBid() *Bid {
	auction := int64(0)
	if g.numAucts > 0 {
		auction = g.rng.Int63n(g.numAucts)
	}
	bidder := int64(0)
	if g.numPeople > 0 {
		bidder = g.rng.Int63n(g.numPeople)
	}
	return &Bid{
		Auction:   auction,
		Bidder:    bidder,
		Price:     1 + g.rng.Int63n(10_000),
		Timestamp: g.now,
	}
}
