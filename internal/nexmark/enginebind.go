package nexmark

import (
	"encoding/gob"
	"encoding/json"
	"fmt"

	"capsys/internal/dataflow"
	"capsys/internal/engine"
)

// Nexmark event structs travel as engine.Record values; under the network
// transport records cross process boundaries gob-encoded, so the concrete
// types behind the Value interface must be registered. Scalars, [2]any join
// pairs and other built-ins are registered by the engine's frame codec.
func init() {
	gob.Register(Person{})
	gob.Register(Auction{})
	gob.Register(Bid{})
}

// EngineBinding carries everything needed to execute a benchmark query on
// the live engine: operator factories, which operators need state, and the
// per-record CPU costs the engine charges against the workers' shared
// meters (the profiled costs, mirroring what heavyweight operator logic
// would consume on a real cluster).
type EngineBinding struct {
	Factories    map[dataflow.OperatorID]engine.Factory
	Stateful     map[dataflow.OperatorID]bool
	PerRecordCPU map[dataflow.OperatorID]float64
}

// BindEngine builds the live-engine implementation of one of the six
// benchmark queries. Seed drives the deterministic event generators (each
// source task derives its own stream from seed and its task index).
func BindEngine(spec QuerySpec, seed int64) (*EngineBinding, error) {
	if spec.Graph == nil {
		return nil, fmt.Errorf("nexmark: query %q has no graph", spec.Name)
	}
	b := &EngineBinding{
		Factories:    make(map[dataflow.OperatorID]engine.Factory),
		Stateful:     make(map[dataflow.OperatorID]bool),
		PerRecordCPU: make(map[dataflow.OperatorID]float64),
	}
	for _, op := range spec.Graph.Operators() {
		b.PerRecordCPU[op.ID] = op.Cost.CPU
	}
	switch spec.Name {
	case "Q1-sliding":
		bindQ1(b, spec, seed)
	case "Q2-join":
		bindQ2(b, spec, seed)
	case "Q3-inf":
		bindQ3(b, spec, seed)
	case "Q4-join":
		bindQ4(b, spec, seed)
	case "Q5-aggregate":
		bindQ5(b, spec, seed)
	case "Q6-session":
		bindQ6(b, spec, seed)
	default:
		return nil, fmt.Errorf("nexmark: no engine binding for query %q", spec.Name)
	}
	return b, nil
}

// recordSize picks the record size from the operator's profiled per-record
// output bytes, capped to keep in-memory tests light.
func recordSize(op *dataflow.Operator) int {
	n := int(op.Cost.Net)
	if n <= 0 {
		n = engine.DefaultRecordSize
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return n
}

func countAgg(acc []byte, _ engine.Record) []byte {
	n := 0
	if acc != nil {
		_ = json.Unmarshal(acc, &n)
	}
	n++
	out, _ := json.Marshal(n)
	return out
}

func countResult(size int) engine.WindowResultFunc {
	return func(key string, start, end int64, acc []byte) engine.Record {
		n := 0
		_ = json.Unmarshal(acc, &n)
		return engine.Record{Key: key, Value: n, Time: end, Size: size}
	}
}

func sinkFactory(fn engine.SinkFunc) engine.Factory {
	return func(*engine.TaskContext) (any, error) { return engine.NewSink(fn), nil }
}

// bidSource emits a deterministic bid stream keyed by auction.
func bidSource(spec QuerySpec, op dataflow.OperatorID, seed int64) engine.Factory {
	size := recordSize(spec.Graph.Operator(op))
	return func(ctx *engine.TaskContext) (any, error) {
		gen := NewGenerator(seed+int64(ctx.Index)*7919, 1)
		return engine.NewSource(func(task, i int64) (engine.Record, bool) {
			bid := gen.NextBid()
			return engine.Record{
				Key:   fmt.Sprintf("a%d", bid.Auction),
				Value: *bid, Time: bid.Timestamp, Size: size,
			}, true
		}), nil
	}
}

// bindQ1 implements Nexmark Q5 (hot items): count bids per auction over a
// sliding event-time window.
func bindQ1(b *EngineBinding, spec QuerySpec, seed int64) {
	b.Factories["src"] = bidSource(spec, "src", seed)
	mapSize := recordSize(spec.Graph.Operator("map"))
	b.Factories["map"] = func(*engine.TaskContext) (any, error) {
		return engine.NewMap(func(r engine.Record) engine.Record {
			r.Size = mapSize
			return r
		}), nil
	}
	b.Factories["slide-win"] = func(*engine.TaskContext) (any, error) {
		return engine.NewSlidingWindow(2000, 500, countAgg,
			countResult(recordSize(spec.Graph.Operator("slide-win")))), nil
	}
	b.Stateful["slide-win"] = true
	b.Factories["sink"] = sinkFactory(nil)
}

// bindQ2 implements Nexmark Q8 (monitor new users): join persons who
// registered in a window with auctions they opened in the same window.
func bindQ2(b *EngineBinding, spec QuerySpec, seed int64) {
	personSize := recordSize(spec.Graph.Operator("src-person"))
	auctionSize := recordSize(spec.Graph.Operator("src-auction"))
	b.Factories["src-person"] = func(ctx *engine.TaskContext) (any, error) {
		gen := NewGenerator(seed+1000+int64(ctx.Index), 1)
		return engine.NewSource(func(task, i int64) (engine.Record, bool) {
			p := gen.NextPerson()
			return engine.Record{Key: fmt.Sprintf("p%d", p.ID), Value: *p, Time: p.Timestamp, Size: personSize}, true
		}), nil
	}
	b.Factories["src-auction"] = func(ctx *engine.TaskContext) (any, error) {
		gen := NewGenerator(seed+2000+int64(ctx.Index), 1)
		return engine.NewSource(func(task, i int64) (engine.Record, bool) {
			// Auctions reference sellers from the same ID space.
			a := gen.NextAuction()
			return engine.Record{Key: fmt.Sprintf("p%d", a.Seller), Value: *a, Time: a.Timestamp, Size: auctionSize}, true
		}), nil
	}
	identity := func(*engine.TaskContext) (any, error) {
		return engine.NewMap(func(r engine.Record) engine.Record { return r }), nil
	}
	b.Factories["map-person"] = identity
	b.Factories["map-auction"] = identity
	b.Factories["tumble-join"] = func(*engine.TaskContext) (any, error) {
		return engine.NewTumblingWindowJoin(1000, func(l, r engine.Record) (engine.Record, bool) {
			return engine.Record{Key: l.Key, Value: [2]any{l.Value, r.Value}, Time: maxI64(l.Time, r.Time),
				Size: recordSize(spec.Graph.Operator("tumble-join"))}, true
		}), nil
	}
	b.Stateful["tumble-join"] = true
	b.Factories["sink"] = sinkFactory(nil)
}

// bindQ3 implements the inference pipeline: synthetic image frames flow
// through decode and a model-inference stage (the heavy compute is charged
// via PerRecordCPU; the operator computes a deterministic pseudo-score).
func bindQ3(b *EngineBinding, spec QuerySpec, seed int64) {
	srcSize := recordSize(spec.Graph.Operator("src"))
	decodeSize := recordSize(spec.Graph.Operator("decode"))
	b.Factories["src"] = func(ctx *engine.TaskContext) (any, error) {
		return engine.NewSource(func(task, i int64) (engine.Record, bool) {
			return engine.Record{
				Key:   fmt.Sprintf("frame-%d-%d", task, i),
				Value: seed + task<<32 + i, Time: i, Size: srcSize,
			}, true
		}), nil
	}
	b.Factories["decode"] = func(*engine.TaskContext) (any, error) {
		return engine.NewMap(func(r engine.Record) engine.Record {
			r.Size = decodeSize
			return r
		}), nil
	}
	b.Factories["inference"] = func(*engine.TaskContext) (any, error) {
		return engine.NewMap(func(r engine.Record) engine.Record {
			// Deterministic pseudo-classification over the frame ID.
			x := r.Value.(int64)
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return engine.Record{Key: r.Key, Value: x % 1000, Time: r.Time,
				Size: recordSize(spec.Graph.Operator("inference"))}
		}), nil
	}
	b.Factories["sink"] = sinkFactory(nil)
}

// bindQ4 implements Nexmark Q3 (local item suggestion): filter persons by
// state and incrementally join them with auctions by seller.
func bindQ4(b *EngineBinding, spec QuerySpec, seed int64) {
	personSize := recordSize(spec.Graph.Operator("src-person"))
	auctionSize := recordSize(spec.Graph.Operator("src-auction"))
	b.Factories["src-person"] = func(ctx *engine.TaskContext) (any, error) {
		gen := NewGenerator(seed+3000+int64(ctx.Index), 1)
		return engine.NewSource(func(task, i int64) (engine.Record, bool) {
			p := gen.NextPerson()
			return engine.Record{Key: fmt.Sprintf("p%d", p.ID), Value: *p, Time: p.Timestamp, Size: personSize}, true
		}), nil
	}
	b.Factories["src-auction"] = func(ctx *engine.TaskContext) (any, error) {
		gen := NewGenerator(seed+4000+int64(ctx.Index), 1)
		return engine.NewSource(func(task, i int64) (engine.Record, bool) {
			a := gen.NextAuction()
			return engine.Record{Key: fmt.Sprintf("p%d", a.Seller), Value: *a, Time: a.Timestamp, Size: auctionSize}, true
		}), nil
	}
	b.Factories["filter"] = func(*engine.TaskContext) (any, error) {
		return engine.NewFilter(func(r engine.Record) bool {
			p := r.Value.(Person)
			return p.State == "OR" || p.State == "ID" || p.State == "CA" || p.State == "WA"
		}), nil
	}
	b.Factories["inc-join"] = func(*engine.TaskContext) (any, error) {
		return engine.NewIncrementalJoin(func(l, r engine.Record) (engine.Record, bool) {
			return engine.Record{Key: l.Key, Value: [2]any{l.Value, r.Value},
				Time: maxI64(l.Time, r.Time), Size: recordSize(spec.Graph.Operator("inc-join"))}, true
		}, 64), nil
	}
	b.Stateful["inc-join"] = true
	b.Factories["sink"] = sinkFactory(nil)
}

// bindQ5 implements Nexmark Q6 (average selling price per seller): join
// auctions with bids, then maintain a running average per seller.
func bindQ5(b *EngineBinding, spec QuerySpec, seed int64) {
	auctionSize := recordSize(spec.Graph.Operator("src-auction"))
	bidSize := recordSize(spec.Graph.Operator("src-bid"))
	b.Factories["src-auction"] = func(ctx *engine.TaskContext) (any, error) {
		gen := NewGenerator(seed+5000+int64(ctx.Index), 1)
		return engine.NewSource(func(task, i int64) (engine.Record, bool) {
			a := gen.NextAuction()
			return engine.Record{Key: fmt.Sprintf("a%d", a.ID), Value: *a, Time: a.Timestamp, Size: auctionSize}, true
		}), nil
	}
	b.Factories["src-bid"] = func(ctx *engine.TaskContext) (any, error) {
		gen := NewGenerator(seed+6000+int64(ctx.Index), 1)
		return engine.NewSource(func(task, i int64) (engine.Record, bool) {
			bid := gen.NextBid()
			return engine.Record{Key: fmt.Sprintf("a%d", bid.Auction), Value: *bid, Time: bid.Timestamp, Size: bidSize}, true
		}), nil
	}
	b.Factories["join"] = func(*engine.TaskContext) (any, error) {
		return engine.NewIncrementalJoin(func(l, r engine.Record) (engine.Record, bool) {
			a, okA := decodeAuction(l.Value)
			bid, okB := decodeBid(r.Value)
			if !okA || !okB {
				return engine.Record{}, false
			}
			// Winning-price proxy: bids above the reserve count as sales.
			if bid.Price < a.Reserve {
				return engine.Record{}, false
			}
			return engine.Record{
				Key:   fmt.Sprintf("s%d", a.Seller),
				Value: bid.Price, Time: maxI64(l.Time, r.Time),
				Size: recordSize(spec.Graph.Operator("join")),
			}, true
		}, 16), nil
	}
	b.Stateful["join"] = true
	b.Factories["aggregate"] = func(*engine.TaskContext) (any, error) {
		return engine.NewProcess(func(ctx *engine.TaskContext, rec engine.Record, emit engine.Emit) error {
			type avgState struct {
				Sum   int64 `json:"s"`
				Count int64 `json:"c"`
			}
			var st avgState
			if buf, ok := ctx.State.Get(rec.Key); ok {
				if err := json.Unmarshal(buf, &st); err != nil {
					return err
				}
			}
			st.Sum += rec.Value.(int64)
			st.Count++
			buf, err := json.Marshal(st)
			if err != nil {
				return err
			}
			ctx.State.Put(rec.Key, buf)
			// Emit the updated average every 4th sale per seller.
			if st.Count%4 == 0 {
				emit(engine.Record{Key: rec.Key, Value: st.Sum / st.Count, Time: rec.Time,
					Size: recordSize(spec.Graph.Operator("aggregate"))})
			}
			return nil
		}), nil
	}
	b.Stateful["aggregate"] = true
	b.Factories["sink"] = sinkFactory(nil)
}

// bindQ6 implements Nexmark Q11 (user sessions): count each bidder's bids
// per session with a gap timeout.
func bindQ6(b *EngineBinding, spec QuerySpec, seed int64) {
	srcSize := recordSize(spec.Graph.Operator("src"))
	b.Factories["src"] = func(ctx *engine.TaskContext) (any, error) {
		gen := NewGenerator(seed+7000+int64(ctx.Index), 1)
		return engine.NewSource(func(task, i int64) (engine.Record, bool) {
			bid := gen.NextBid()
			return engine.Record{Key: fmt.Sprintf("u%d", bid.Bidder), Value: *bid, Time: bid.Timestamp, Size: srcSize}, true
		}), nil
	}
	b.Factories["map"] = func(*engine.TaskContext) (any, error) {
		return engine.NewMap(func(r engine.Record) engine.Record { return r }), nil
	}
	b.Factories["session-win"] = func(*engine.TaskContext) (any, error) {
		return engine.NewSessionWindow(500, countAgg,
			countResult(recordSize(spec.Graph.Operator("session-win")))), nil
	}
	b.Stateful["session-win"] = true
	b.Factories["sink"] = sinkFactory(nil)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// decodeAuction recovers an Auction from either a native value or the
// generic map produced by a JSON round trip through join state.
func decodeAuction(v any) (Auction, bool) {
	if a, ok := v.(Auction); ok {
		return a, true
	}
	var a Auction
	buf, err := json.Marshal(v)
	if err != nil {
		return Auction{}, false
	}
	if json.Unmarshal(buf, &a) != nil {
		return Auction{}, false
	}
	return a, true
}

// decodeBid recovers a Bid from either a native value or a JSON-decoded map.
func decodeBid(v any) (Bid, bool) {
	if b, ok := v.(Bid); ok {
		return b, true
	}
	var b Bid
	buf, err := json.Marshal(v)
	if err != nil {
		return Bid{}, false
	}
	if json.Unmarshal(buf, &b) != nil {
		return Bid{}, false
	}
	return b, true
}
