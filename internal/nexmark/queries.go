package nexmark

import (
	"fmt"

	"capsys/internal/cluster"
	"capsys/internal/dataflow"
)

// QuerySpec bundles everything needed to deploy one benchmark query: the
// logical graph (with default parallelism and profiled unit costs) and the
// target source rates that saturate the reference cluster.
type QuerySpec struct {
	// Name is the paper's query identifier, e.g. "Q1-sliding".
	Name string
	// Graph is the logical dataflow with default parallelism and unit
	// costs.
	Graph *dataflow.LogicalGraph
	// SourceRates is the target event rate per source operator that
	// saturates the reference cluster (the paper's methodology: the target
	// input rate matches cluster capacity).
	SourceRates map[dataflow.OperatorID]float64
}

// TotalRate returns the aggregate target source rate.
func (q QuerySpec) TotalRate() float64 {
	total := 0.0
	for _, r := range q.SourceRates {
		total += r
	}
	return total
}

// Scaled returns a copy of the spec with all source rates multiplied by f.
func (q QuerySpec) Scaled(f float64) QuerySpec {
	out := QuerySpec{Name: q.Name, Graph: q.Graph.Clone(), SourceRates: make(map[dataflow.OperatorID]float64, len(q.SourceRates))}
	for k, v := range q.SourceRates {
		out.SourceRates[k] = v * f
	}
	return out
}

// ReferenceCluster returns the single-query evaluation cluster modeled on
// the paper's 4x m5d.2xlarge deployment: 4 workers with 4 slots, 4 cores,
// 200 MB/s SSD bandwidth and 10 Gbit/s network each.
func ReferenceCluster() *cluster.Cluster {
	c, err := cluster.Homogeneous(4, 4, 4.0, 200e6, 1.25e9)
	if err != nil {
		panic(err) // static parameters cannot fail
	}
	return c
}

// MultiTenantCluster returns the paper's 18-worker, 144-slot multi-tenant
// cluster (§6.2.2).
func MultiTenantCluster() *cluster.Cluster {
	c, err := cluster.Homogeneous(18, 8, 4.0, 200e6, 1.25e9)
	if err != nil {
		panic(err)
	}
	return c
}

// mustGraph assembles a graph from operators and edges, panicking on
// programming errors (the query definitions are static).
func mustGraph(ops []dataflow.Operator, edges []dataflow.Edge) *dataflow.LogicalGraph {
	g := dataflow.NewLogicalGraph()
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			panic(fmt.Sprintf("nexmark: %v", err))
		}
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			panic(fmt.Sprintf("nexmark: %v", err))
		}
	}
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("nexmark: %v", err))
	}
	return g
}

// Q1Sliding is the paper's Q1-sliding (Nexmark Q5, hot items): a map
// followed by a CPU- and I/O-intensive sliding window over bids.
func Q1Sliding() QuerySpec {
	g := mustGraph(
		[]dataflow.Operator{
			{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 2e-5, Net: 120}},
			{ID: "map", Kind: dataflow.KindMap, Parallelism: 4, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 4e-5, Net: 120}},
			{ID: "slide-win", Kind: dataflow.KindWindow, Parallelism: 8, Selectivity: 0.25,
				Cost: dataflow.UnitCost{CPU: 4.5e-4, IO: 50000, Net: 40}},
			{ID: "sink", Kind: dataflow.KindSink, Parallelism: 2, Selectivity: 0,
				Cost: dataflow.UnitCost{CPU: 5e-6}},
		},
		[]dataflow.Edge{{From: "src", To: "map"}, {From: "map", To: "slide-win"}, {From: "slide-win", To: "sink"}},
	)
	return QuerySpec{
		Name:        "Q1-sliding",
		Graph:       g,
		SourceRates: map[dataflow.OperatorID]float64{"src": 14000},
	}
}

// Q2Join is the paper's Q2-join (Nexmark Q8, monitor new users): two
// sources feeding a tumbling window join that accumulates large state,
// making the join tasks disk-I/O intensive.
func Q2Join() QuerySpec {
	g := mustGraph(
		[]dataflow.Operator{
			{ID: "src-person", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 1e-5, Net: 150}},
			{ID: "src-auction", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 1e-5, Net: 180}},
			{ID: "map-person", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 1.5e-5, Net: 150}},
			{ID: "map-auction", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 1.5e-5, Net: 180}},
			{ID: "tumble-join", Kind: dataflow.KindJoin, Parallelism: 8, Selectivity: 0.1,
				Cost: dataflow.UnitCost{CPU: 6e-5, IO: 5500, Net: 90}},
			{ID: "sink", Kind: dataflow.KindSink, Parallelism: 2, Selectivity: 0,
				Cost: dataflow.UnitCost{CPU: 5e-6}},
		},
		[]dataflow.Edge{
			{From: "src-person", To: "map-person"},
			{From: "src-auction", To: "map-auction"},
			{From: "map-person", To: "tumble-join"},
			{From: "map-auction", To: "tumble-join"},
			{From: "tumble-join", To: "sink"},
		},
	)
	return QuerySpec{
		Name:  "Q2-join",
		Graph: g,
		SourceRates: map[dataflow.OperatorID]float64{
			"src-person":  55000,
			"src-auction": 55000,
		},
	}
}

// Q3Inf is the paper's Q3-inf: an image processing + model inference
// pipeline (Crayfish-style). The inference operator is strongly
// compute-intensive (with GC-induced spikes); decode and inference exchange
// large image records, making them network-intensive.
func Q3Inf() QuerySpec {
	g := mustGraph(
		[]dataflow.Operator{
			{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 5e-5, Net: 120e3}}, // ~120 KB raw images
			{ID: "decode", Kind: dataflow.KindMap, Parallelism: 4, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 9e-4, Net: 180e3}}, // decoded tensors
			{ID: "inference", Kind: dataflow.KindInference, Parallelism: 8, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 5.5e-3, Net: 400}},
			{ID: "sink", Kind: dataflow.KindSink, Parallelism: 2, Selectivity: 0,
				Cost: dataflow.UnitCost{CPU: 1e-5}},
		},
		[]dataflow.Edge{{From: "src", To: "decode"}, {From: "decode", To: "inference"}, {From: "inference", To: "sink"}},
	)
	return QuerySpec{
		Name:        "Q3-inf",
		Graph:       g,
		SourceRates: map[dataflow.OperatorID]float64{"src": 1400},
	}
}

// Q4Join is the paper's Q4-join (Nexmark Q3, local item suggestion): a
// filter feeding a stateful incremental join.
func Q4Join() QuerySpec {
	g := mustGraph(
		[]dataflow.Operator{
			{ID: "src-person", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 1e-5, Net: 150}},
			{ID: "src-auction", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 1e-5, Net: 180}},
			{ID: "filter", Kind: dataflow.KindFilter, Parallelism: 3, Selectivity: 0.4,
				Cost: dataflow.UnitCost{CPU: 2.5e-5, Net: 70}},
			{ID: "inc-join", Kind: dataflow.KindJoin, Parallelism: 8, Selectivity: 0.3,
				Cost: dataflow.UnitCost{CPU: 1e-4, IO: 6000, Net: 110}},
			{ID: "sink", Kind: dataflow.KindSink, Parallelism: 3, Selectivity: 0,
				Cost: dataflow.UnitCost{CPU: 5e-6}},
		},
		[]dataflow.Edge{
			{From: "src-person", To: "filter"},
			{From: "src-auction", To: "inc-join"},
			{From: "filter", To: "inc-join"},
			{From: "inc-join", To: "sink"},
		},
	)
	return QuerySpec{
		Name:  "Q4-join",
		Graph: g,
		SourceRates: map[dataflow.OperatorID]float64{
			"src-person":  55000,
			"src-auction": 55000,
		},
	}
}

// Q5Aggregate is the paper's Q5-aggregate (Nexmark Q6, average selling
// price by seller): a stateful join followed by a compute-heavy process
// function, mixing I/O- and CPU-intensive stages.
func Q5Aggregate() QuerySpec {
	g := mustGraph(
		[]dataflow.Operator{
			{ID: "src-auction", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 1e-5, Net: 180}},
			{ID: "src-bid", Kind: dataflow.KindSource, Parallelism: 1, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 1e-5, Net: 140}},
			{ID: "join", Kind: dataflow.KindJoin, Parallelism: 6, Selectivity: 0.5,
				Cost: dataflow.UnitCost{CPU: 9e-5, IO: 5200, Net: 120}},
			{ID: "aggregate", Kind: dataflow.KindProcess, Parallelism: 6, Selectivity: 0.2,
				Cost: dataflow.UnitCost{CPU: 2e-4, IO: 700, Net: 40}},
			{ID: "sink", Kind: dataflow.KindSink, Parallelism: 2, Selectivity: 0,
				Cost: dataflow.UnitCost{CPU: 5e-6}},
		},
		[]dataflow.Edge{
			{From: "src-auction", To: "join"},
			{From: "src-bid", To: "join"},
			{From: "join", To: "aggregate"},
			{From: "aggregate", To: "sink"},
		},
	)
	return QuerySpec{
		Name:  "Q5-aggregate",
		Graph: g,
		SourceRates: map[dataflow.OperatorID]float64{
			"src-auction": 26000,
			"src-bid":     26000,
		},
	}
}

// Q6Session is the paper's Q6-session (Nexmark Q11, user sessions): a
// session window that can accumulate very large state, dominating disk I/O.
func Q6Session() QuerySpec {
	g := mustGraph(
		[]dataflow.Operator{
			{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 2e-5, Net: 140}},
			{ID: "map", Kind: dataflow.KindMap, Parallelism: 2, Selectivity: 1,
				Cost: dataflow.UnitCost{CPU: 2e-5, Net: 140}},
			{ID: "session-win", Kind: dataflow.KindWindow, Parallelism: 10, Selectivity: 0.15,
				Cost: dataflow.UnitCost{CPU: 1.1e-4, IO: 7500, Net: 60}},
			{ID: "sink", Kind: dataflow.KindSink, Parallelism: 2, Selectivity: 0,
				Cost: dataflow.UnitCost{CPU: 5e-6}},
		},
		[]dataflow.Edge{{From: "src", To: "map"}, {From: "map", To: "session-win"}, {From: "session-win", To: "sink"}},
	)
	return QuerySpec{
		Name:        "Q6-session",
		Graph:       g,
		SourceRates: map[dataflow.OperatorID]float64{"src": 70000},
	}
}

// AllQueries returns the six benchmark queries in paper order.
func AllQueries() []QuerySpec {
	return []QuerySpec{Q1Sliding(), Q2Join(), Q3Inf(), Q4Join(), Q5Aggregate(), Q6Session()}
}

// ByName returns the named query spec.
func ByName(name string) (QuerySpec, error) {
	for _, q := range AllQueries() {
		if q.Name == name {
			return q, nil
		}
	}
	return QuerySpec{}, fmt.Errorf("nexmark: unknown query %q", name)
}
