package nexmark

import (
	"context"
	"testing"

	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
	"capsys/internal/placement"
	"capsys/internal/simulator"
)

func TestGeneratorMix(t *testing.T) {
	g := NewGenerator(1, 1)
	counts := map[EventKind]int{}
	var lastTS int64
	for i := 0; i < 5000; i++ {
		e := g.Next()
		counts[e.Kind]++
		if e.Timestamp < lastTS {
			t.Fatal("timestamps must be non-decreasing")
		}
		lastTS = e.Timestamp
		switch e.Kind {
		case PersonEvent:
			if e.Person == nil || e.Auction != nil || e.Bid != nil {
				t.Fatal("person event payload inconsistent")
			}
		case AuctionEvent:
			if e.Auction == nil {
				t.Fatal("auction event missing payload")
			}
		case BidEvent:
			if e.Bid == nil {
				t.Fatal("bid event missing payload")
			}
		}
	}
	// 5000 events = 100 full cycles: exactly 100 persons, 300 auctions,
	// 4600 bids.
	if counts[PersonEvent] != 100 || counts[AuctionEvent] != 300 || counts[BidEvent] != 4600 {
		t.Errorf("event mix = %v, want 100/300/4600", counts)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewGenerator(7, 2), NewGenerator(7, 2)
	for i := 0; i < 200; i++ {
		ea, eb := a.Next(), b.Next()
		if ea.Kind != eb.Kind || ea.Timestamp != eb.Timestamp {
			t.Fatalf("generators diverged at event %d", i)
		}
		if ea.Kind == BidEvent && *ea.Bid != *eb.Bid {
			t.Fatalf("bid payloads diverged at event %d", i)
		}
	}
	c := NewGenerator(8, 2)
	diff := false
	for i := 0; i < 200; i++ {
		ea, ec := NewGenerator(7, 2).Next(), c.Next()
		if ea.Kind == ec.Kind && ea.Kind == BidEvent && *ea.Bid != *ec.Bid {
			diff = true
		}
		_ = ec
	}
	_ = diff // different seeds need not differ on every event; determinism is what matters
}

func TestGeneratorReferences(t *testing.T) {
	g := NewGenerator(3, 1)
	for i := 0; i < 2000; i++ {
		e := g.Next()
		switch e.Kind {
		case AuctionEvent:
			if e.Auction.Expires <= e.Auction.Timestamp {
				t.Fatal("auction expires before it opens")
			}
		case BidEvent:
			if e.Bid.Price <= 0 {
				t.Fatal("non-positive bid price")
			}
		}
	}
}

func TestEventKindString(t *testing.T) {
	for _, k := range []EventKind{PersonEvent, AuctionEvent, BidEvent, EventKind(9)} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

func TestAllQueriesWellFormed(t *testing.T) {
	qs := AllQueries()
	if len(qs) != 6 {
		t.Fatalf("AllQueries returned %d queries, want 6", len(qs))
	}
	ref := ReferenceCluster()
	for _, q := range qs {
		if err := q.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
		if got := q.Graph.TotalTasks(); got != 16 {
			t.Errorf("%s: %d tasks, want 16 (reference cluster slots)", q.Name, got)
		}
		if !ref.Fits(q.Graph.TotalTasks()) {
			t.Errorf("%s does not fit the reference cluster", q.Name)
		}
		for _, src := range q.Graph.Sources() {
			if q.SourceRates[src.ID] <= 0 {
				t.Errorf("%s: source %s has no target rate", q.Name, src.ID)
			}
		}
		if q.TotalRate() <= 0 {
			t.Errorf("%s: zero total rate", q.Name)
		}
	}
}

func TestByName(t *testing.T) {
	q, err := ByName("Q3-inf")
	if err != nil || q.Name != "Q3-inf" {
		t.Errorf("ByName(Q3-inf) = %v, %v", q.Name, err)
	}
	if _, err := ByName("Q99"); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestScaled(t *testing.T) {
	q := Q1Sliding()
	s := q.Scaled(2)
	if s.SourceRates["src"] != 28000 {
		t.Errorf("scaled rate = %v", s.SourceRates["src"])
	}
	if q.SourceRates["src"] != 14000 {
		t.Error("Scaled mutated the original")
	}
	// Graph is cloned, not shared.
	if err := s.Graph.SetParallelism("src", 9); err != nil {
		t.Fatal(err)
	}
	if q.Graph.Operator("src").Parallelism != 2 {
		t.Error("Scaled shares the graph with the original")
	}
}

// Calibration: on the reference cluster, a CAPS placement must sustain (or
// nearly sustain) each query's target rate, while a placement packing the
// heaviest operator's tasks must do strictly worse. This pins the unit
// costs and target rates to the paper's "target rate == cluster capacity"
// methodology.
func TestQueriesCalibratedAgainstReferenceCluster(t *testing.T) {
	ref := ReferenceCluster()
	slots, _ := ref.SlotsPerWorker()
	for _, q := range AllQueries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			phys, err := dataflow.Expand(q.Graph)
			if err != nil {
				t.Fatal(err)
			}
			rates, err := dataflow.PropagateRates(q.Graph, q.SourceRates)
			if err != nil {
				t.Fatal(err)
			}
			u := costmodel.FromRates(q.Graph, rates)

			capsPlan, err := (placement.CAPS{}).Place(context.Background(), phys, ref, u, 0)
			if err != nil {
				t.Fatal(err)
			}
			good, err := simulator.Evaluate([]simulator.QueryDeployment{{
				Name: q.Name, Phys: phys, Plan: capsPlan, SourceRates: q.SourceRates,
			}}, ref, simulator.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			gm := good.Queries[q.Name]
			if gm.Admission < 0.9 {
				t.Errorf("CAPS admission = %v, want >= 0.9 (costs mis-calibrated: cluster cannot host target)", gm.Admission)
			}

			// Pack the heaviest operator (most tasks among non-sources)
			// onto as few workers as possible.
			worst := FlinkWorstCase(phys, slots)
			bad, err := simulator.Evaluate([]simulator.QueryDeployment{{
				Name: q.Name, Phys: phys, Plan: worst, SourceRates: q.SourceRates,
			}}, ref, simulator.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			bm := bad.Queries[q.Name]
			if bm.Throughput >= gm.Throughput {
				t.Errorf("packed plan throughput %v >= CAPS %v (contention not expressed)", bm.Throughput, gm.Throughput)
			}
		})
	}
}
