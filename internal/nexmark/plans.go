package nexmark

import (
	"sort"

	"capsys/internal/dataflow"
)

// FlinkWorstCase builds a deliberately bad placement: the operator with the
// largest parallelism (typically the resource-heavy window/join/inference
// stage) is packed onto as few workers as possible, and the remaining
// operators fill the leftover slots worker by worker. It models the
// worst-case outcome of Flink's randomized default policy and is used by the
// empirical-study experiments (paper §3) as the high-contention extreme.
func FlinkWorstCase(p *dataflow.PhysicalGraph, slotsPerWorker int) *dataflow.Plan {
	ops := p.Logical.Operators()
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Parallelism > ops[j].Parallelism })
	pl := dataflow.NewPlan()
	next, used := 0, 0
	place := func(t dataflow.TaskID) {
		for used >= slotsPerWorker {
			next++
			used = 0
		}
		pl.Assign(t, next)
		used++
	}
	for _, op := range ops {
		for _, t := range p.TasksOf(op.ID) {
			place(t)
		}
	}
	return pl
}

// ColocationPlan builds a plan with a controlled co-location degree for one
// operator, reproducing the paper's §3.3 methodology: exactly group of the
// operator's tasks share each worker (group=1 spreads them fully; group=
// parallelism packs them all together), and all other operators are spread
// round-robin over the remaining slot capacity.
//
// The plan uses as many workers as needed for the grouped operator first,
// then fills other tasks least-loaded-first.
func ColocationPlan(p *dataflow.PhysicalGraph, numWorkers, slotsPerWorker int, op dataflow.OperatorID, group int) *dataflow.Plan {
	if group < 1 {
		group = 1
	}
	pl := dataflow.NewPlan()
	counts := make([]int, numWorkers)

	// Place the grouped operator: `group` tasks per worker, in worker order.
	heavy := p.TasksOf(op)
	w := 0
	inWorker := 0
	for _, t := range heavy {
		if inWorker == group || counts[w] >= slotsPerWorker {
			w++
			inWorker = 0
		}
		if w >= numWorkers {
			w = numWorkers - 1 // overflow: pile onto the last worker
		}
		pl.Assign(t, w)
		counts[w]++
		inWorker++
	}

	// Spread everything else least-loaded first.
	for _, o := range p.Logical.Operators() {
		if o.ID == op {
			continue
		}
		for _, t := range p.TasksOf(o.ID) {
			best := -1
			for i := 0; i < numWorkers; i++ {
				if counts[i] >= slotsPerWorker {
					continue
				}
				if best == -1 || counts[i] < counts[best] {
					best = i
				}
			}
			if best == -1 {
				best = numWorkers - 1
			}
			pl.Assign(t, best)
			counts[best]++
		}
	}
	return pl
}
