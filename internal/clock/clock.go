// Package clock provides an injectable time source.
//
// The CAPS search, the auto-tuner and the ODRP solver must be bitwise
// deterministic — the golden and property tests replay them and compare
// results exactly — yet they also report wall-clock effort and honor
// deadlines. Reading time.Now directly inside those packages would trip the
// capslint determinism analyzer (and rightly so: a stray wall-clock read is
// one refactor away from leaking into a tie-break). Instead the deterministic
// packages accept a Clock and default to the system clock at the option
// boundary; tests inject Fixed or Step clocks and get reproducible Elapsed
// fields for free.
package clock

import "time"

// Clock returns the current time. The zero value (nil) is not usable;
// callers default nil options to System().
type Clock func() time.Time

// System is the wall clock.
func System() Clock { return time.Now }

// Fixed returns a clock frozen at t: every call returns the same instant,
// so durations derived from it are zero.
func Fixed(t time.Time) Clock {
	return func() time.Time { return t }
}

// Step returns a clock that starts at t and advances by d on every call
// (the first call returns t). It gives tests monotonic, reproducible
// timestamps and non-zero elapsed durations.
func Step(t time.Time, d time.Duration) Clock {
	next := t
	return func() time.Time {
		cur := next
		next = next.Add(d)
		return cur
	}
}

// Since is the injectable analogue of time.Since.
func (c Clock) Since(t time.Time) time.Duration { return c().Sub(t) }

// OrSystem returns c, or System() when c is nil — the standard defaulting
// step at an options boundary.
func (c Clock) OrSystem() Clock {
	if c == nil {
		return System()
	}
	return c
}
