package clock

import (
	"testing"
	"time"
)

func TestFixed(t *testing.T) {
	at := time.Unix(1700000000, 0)
	c := Fixed(at)
	if !c().Equal(at) || !c().Equal(at) {
		t.Error("Fixed clock moved")
	}
	if d := c.Since(at); d != 0 {
		t.Errorf("Since(at) on a fixed clock = %v, want 0", d)
	}
}

func TestStep(t *testing.T) {
	start := time.Unix(1700000000, 0)
	c := Step(start, time.Second)
	if got := c(); !got.Equal(start) {
		t.Errorf("first read = %v, want start", got)
	}
	if got := c(); !got.Equal(start.Add(time.Second)) {
		t.Errorf("second read = %v, want start+1s", got)
	}
	if d := c.Since(start); d != 2*time.Second {
		t.Errorf("third read via Since = %v, want 2s", d)
	}
}

func TestOrSystem(t *testing.T) {
	var nilClock Clock
	if nilClock.OrSystem() == nil {
		t.Fatal("nil Clock must default to the system clock")
	}
	before := time.Now()
	got := nilClock.OrSystem()()
	if got.Before(before.Add(-time.Minute)) || got.After(before.Add(time.Minute)) {
		t.Errorf("defaulted clock reads far from wall time: %v", got)
	}
	fixed := Fixed(time.Unix(42, 0))
	if !fixed.OrSystem()().Equal(time.Unix(42, 0)) {
		t.Error("OrSystem replaced a non-nil clock")
	}
}

func TestSystem(t *testing.T) {
	a := System()()
	b := System()()
	if b.Before(a) {
		t.Errorf("system clock went backwards: %v then %v", a, b)
	}
}
