package placement

import (
	"context"
	"testing"
	"testing/quick"

	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

func testSetup(t testing.TB) (*dataflow.PhysicalGraph, *cluster.Cluster, *costmodel.Usage) {
	t.Helper()
	g := dataflow.NewLogicalGraph()
	ops := []dataflow.Operator{
		{ID: "src", Kind: dataflow.KindSource, Parallelism: 2, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 1e-5, Net: 100}},
		{ID: "map", Kind: dataflow.KindMap, Parallelism: 4, Selectivity: 1,
			Cost: dataflow.UnitCost{CPU: 5e-5, Net: 100}},
		{ID: "win", Kind: dataflow.KindWindow, Parallelism: 8, Selectivity: 0.5,
			Cost: dataflow.UnitCost{CPU: 4e-4, IO: 900, Net: 40}},
		{ID: "sink", Kind: dataflow.KindSink, Parallelism: 2, Selectivity: 0,
			Cost: dataflow.UnitCost{CPU: 1e-6}},
	}
	for _, op := range ops {
		if err := g.AddOperator(op); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []dataflow.Edge{{From: "src", To: "map"}, {From: "map", To: "win"}, {From: "win", To: "sink"}} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	p, err := dataflow.Expand(g)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.Homogeneous(4, 4, 4, 100e6, 1.25e8)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := dataflow.PropagateRates(g, map[dataflow.OperatorID]float64{"src": 2000})
	if err != nil {
		t.Fatal(err)
	}
	return p, c, costmodel.FromRates(g, rates)
}

func TestAllStrategiesProduceValidPlans(t *testing.T) {
	p, c, u := testSetup(t)
	for _, name := range []string{"default", "evenly", "random", "greedy", "caps"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
		pl, err := s.Place(context.Background(), p, c, u, 42)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := pl.Validate(p, c.NumWorkers(), 4); err != nil {
			t.Errorf("%s: invalid plan: %v", name, err)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestFlinkDefaultPacksWorkers(t *testing.T) {
	p, c, u := testSetup(t)
	pl, err := FlinkDefault{}.Place(context.Background(), p, c, u, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 16 tasks on 4 workers with 4 slots: default fills every worker fully.
	for w, got := range pl.WorkerCounts(c.NumWorkers()) {
		if got != 4 {
			t.Errorf("worker %d holds %d tasks, want 4 (packed)", w, got)
		}
	}
}

func TestFlinkDefaultVariesWithSeed(t *testing.T) {
	p, c, u := testSetup(t)
	a, _ := FlinkDefault{}.Place(context.Background(), p, c, u, 1)
	b, _ := FlinkDefault{}.Place(context.Background(), p, c, u, 2)
	if a.Equal(b) {
		t.Error("different seeds produced identical default plans")
	}
	a2, _ := FlinkDefault{}.Place(context.Background(), p, c, u, 1)
	if !a.Equal(a2) {
		t.Error("same seed produced different plans (not reproducible)")
	}
}

func TestFlinkEvenlyBalancesCounts(t *testing.T) {
	p, c, u := testSetup(t)
	pl, err := FlinkEvenly{}.Place(context.Background(), p, c, u, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := pl.WorkerCounts(c.NumWorkers())
	min, max := counts[0], counts[0]
	for _, n := range counts {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Errorf("evenly produced unbalanced counts %v", counts)
	}
}

func TestGreedyBeatsDefaultOnBalance(t *testing.T) {
	p, c, u := testSetup(t)
	slots, _ := c.SlotsPerWorker()
	b := costmodel.ComputeBounds(p, u, c.NumWorkers(), slots)
	worstIO := func(pl *dataflow.Plan) float64 {
		return costmodel.PlanCost(p, pl, u, b, c.NumWorkers()).IO
	}
	g, err := Greedy{}.Place(context.Background(), p, c, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy is deterministic and balances scalar load; its IO imbalance
	// must be no worse than the average default plan.
	sum := 0.0
	const runs = 10
	for seed := int64(0); seed < runs; seed++ {
		d, err := FlinkDefault{}.Place(context.Background(), p, c, u, seed)
		if err != nil {
			t.Fatal(err)
		}
		sum += worstIO(d)
	}
	if worstIO(g) > sum/runs {
		t.Errorf("greedy IO cost %v worse than default average %v", worstIO(g), sum/runs)
	}
}

func TestCAPSBeatsBaselinesOnCost(t *testing.T) {
	p, c, u := testSetup(t)
	slots, _ := c.SlotsPerWorker()
	b := costmodel.ComputeBounds(p, u, c.NumWorkers(), slots)
	capsPlan, err := (CAPS{}).Place(context.Background(), p, c, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	capsCost := costmodel.PlanCost(p, capsPlan, u, b, c.NumWorkers())
	for _, name := range []string{"default", "evenly", "random"} {
		s, _ := ByName(name)
		for seed := int64(0); seed < 5; seed++ {
			pl, err := s.Place(context.Background(), p, c, u, seed)
			if err != nil {
				t.Fatal(err)
			}
			cost := costmodel.PlanCost(p, pl, u, b, c.NumWorkers())
			if cost.Dominates(capsCost) {
				t.Errorf("%s seed %d cost %v dominates CAPS cost %v", name, seed, cost, capsCost)
			}
		}
	}
}

func TestInsufficientCapacityRejected(t *testing.T) {
	p, _, u := testSetup(t)
	small, err := cluster.Homogeneous(2, 4, 4, 1e6, 1e6) // 8 slots < 16 tasks
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"default", "evenly", "random", "greedy", "caps"} {
		s, _ := ByName(name)
		if _, err := s.Place(context.Background(), p, small, u, 0); err == nil {
			t.Errorf("%s accepted undersized cluster", name)
		}
	}
}

// Property: every randomized strategy yields a valid plan for any seed.
func TestRandomizedStrategiesAlwaysValid(t *testing.T) {
	p, c, u := testSetup(t)
	f := func(seed int64) bool {
		for _, s := range []Strategy{FlinkDefault{}, FlinkEvenly{}, Random{}} {
			pl, err := s.Place(context.Background(), p, c, u, seed)
			if err != nil {
				return false
			}
			if pl.Validate(p, c.NumWorkers(), 4) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCAPSWithFixedAlpha(t *testing.T) {
	p, c, u := testSetup(t)
	s := CAPS{Alpha: costmodel.Vector{CPU: 0.5, IO: 0.5, Net: 0.9}}
	pl, err := s.Place(context.Background(), p, c, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	slots, _ := c.SlotsPerWorker()
	b := costmodel.ComputeBounds(p, u, c.NumWorkers(), slots)
	cost := costmodel.PlanCost(p, pl, u, b, c.NumWorkers())
	if cost.CPU > 0.5+1e-6 || cost.IO > 0.5+1e-6 || cost.Net > 0.9+1e-6 {
		t.Errorf("plan violates fixed alpha: %v", cost)
	}

	impossible := CAPS{Alpha: costmodel.Vector{CPU: 1e-9, IO: 1e-9, Net: 1e-9}}
	if _, err := impossible.Place(context.Background(), p, c, u, 0); err == nil {
		t.Error("infeasible alpha accepted")
	}
}
