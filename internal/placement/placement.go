// Package placement provides task placement strategies: the two baseline
// policies shipped with Apache Flink (default and evenly, §2.2), a uniformly
// random strategy, a load-balancing greedy heuristic, and the CAPS adapter.
//
// All strategies produce plans satisfying the placement constraints (every
// task on exactly one worker, per-worker slot capacity respected). The Flink
// baselines are intentionally randomized — the paper repeats every baseline
// experiment 10 times precisely because their placement, and therefore their
// performance, varies across runs — so Place takes an explicit seed.
package placement

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"capsys/internal/caps"
	"capsys/internal/cluster"
	"capsys/internal/costmodel"
	"capsys/internal/dataflow"
)

// Strategy computes a task placement plan for a physical graph on a cluster.
type Strategy interface {
	// Name returns the strategy's identifier (e.g. "default", "evenly",
	// "caps").
	Name() string
	// Place computes a plan. Randomized strategies derive all randomness
	// from seed; deterministic strategies ignore it.
	Place(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage, seed int64) (*dataflow.Plan, error)
}

// WarmPlacer is implemented by strategies that can exploit the plan deployed
// before a reconfiguration. The controller passes the outgoing plan on every
// redeploy; strategies that cannot use it simply keep implementing Strategy
// and the controller falls back to Place.
type WarmPlacer interface {
	Strategy
	// PlaceWarm computes a plan, seeding the computation with prev (the plan
	// being replaced; may be nil, may reference a different graph shape or
	// cluster size — implementations must degrade gracefully).
	PlaceWarm(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage, seed int64, prev *dataflow.Plan) (*dataflow.Plan, error)
}

// shuffledTasks returns the graph's tasks in a seed-determined random order.
func shuffledTasks(p *dataflow.PhysicalGraph, seed int64) []dataflow.TaskID {
	tasks := p.Tasks()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(tasks), func(i, j int) { tasks[i], tasks[j] = tasks[j], tasks[i] })
	return tasks
}

func checkCapacity(p *dataflow.PhysicalGraph, c *cluster.Cluster) error {
	if !c.Fits(p.NumTasks()) {
		return fmt.Errorf("placement: %d tasks exceed %d slots", p.NumTasks(), c.TotalSlots())
	}
	return nil
}

// FlinkDefault models Flink's default slot assignment: tasks are taken in
// random order and packed onto workers one at a time, filling all of a
// worker's slots before moving to the next (§2.2, "Task homogeneity
// assumption").
type FlinkDefault struct{}

// Name implements Strategy.
func (FlinkDefault) Name() string { return "default" }

// Place implements Strategy.
func (FlinkDefault) Place(_ context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, _ *costmodel.Usage, seed int64) (*dataflow.Plan, error) {
	if err := checkCapacity(p, c); err != nil {
		return nil, err
	}
	pl := dataflow.NewPlan()
	w, used := 0, 0
	for _, t := range shuffledTasks(p, seed) {
		for used >= c.Worker(w).Slots {
			w++
			used = 0
		}
		pl.Assign(t, w)
		used++
	}
	return pl, nil
}

// FlinkEvenly models Flink's cluster.evenly-spread-out-slots option: tasks
// are taken in random order and spread so the *number* of tasks per worker is
// balanced, ignoring per-task resource requirements.
type FlinkEvenly struct{}

// Name implements Strategy.
func (FlinkEvenly) Name() string { return "evenly" }

// Place implements Strategy.
func (FlinkEvenly) Place(_ context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, _ *costmodel.Usage, seed int64) (*dataflow.Plan, error) {
	if err := checkCapacity(p, c); err != nil {
		return nil, err
	}
	pl := dataflow.NewPlan()
	counts := make([]int, c.NumWorkers())
	for _, t := range shuffledTasks(p, seed) {
		// Pick the worker with the fewest assigned tasks that still has a
		// free slot; break ties by index.
		best := -1
		for w := 0; w < c.NumWorkers(); w++ {
			if counts[w] >= c.Worker(w).Slots {
				continue
			}
			if best == -1 || counts[w] < counts[best] {
				best = w
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("placement: ran out of slots")
		}
		pl.Assign(t, best)
		counts[best]++
	}
	return pl, nil
}

// Random assigns tasks to uniformly random free slots.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Place implements Strategy.
func (Random) Place(_ context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, _ *costmodel.Usage, seed int64) (*dataflow.Plan, error) {
	if err := checkCapacity(p, c); err != nil {
		return nil, err
	}
	var slots []int
	for w := 0; w < c.NumWorkers(); w++ {
		for s := 0; s < c.Worker(w).Slots; s++ {
			slots = append(slots, w)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	pl := dataflow.NewPlan()
	for i, t := range p.Tasks() {
		pl.Assign(t, slots[i])
	}
	return pl, nil
}

// Greedy is a longest-processing-time-first heuristic: tasks are sorted by
// descending scalar usage and each is assigned to the worker whose scalar
// load is currently lowest among those with free slots. It is resource-aware
// but ignores the multi-dimensional structure and network locality that CAPS
// captures; it serves as an ablation baseline.
type Greedy struct{}

// Name implements Strategy.
func (Greedy) Name() string { return "greedy" }

// Place implements Strategy.
func (Greedy) Place(_ context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage, _ int64) (*dataflow.Plan, error) {
	if err := checkCapacity(p, c); err != nil {
		return nil, err
	}
	bounds := costmodel.ComputeBounds(p, u, c.NumWorkers(), c.TotalSlots())
	norm := func(v costmodel.Vector) float64 {
		s := 0.0
		if span := bounds.Max.CPU - bounds.Min.CPU; span > 1e-12 {
			s += v.CPU / span
		}
		if span := bounds.Max.IO - bounds.Min.IO; span > 1e-12 {
			s += v.IO / span
		}
		if span := bounds.Max.Net; span > 1e-12 {
			s += v.Net / span
		}
		return s
	}
	tasks := p.Tasks()
	sort.SliceStable(tasks, func(i, j int) bool {
		return norm(u.Task(tasks[i].Op)) > norm(u.Task(tasks[j].Op))
	})
	loads := make([]float64, c.NumWorkers())
	counts := make([]int, c.NumWorkers())
	pl := dataflow.NewPlan()
	for _, t := range tasks {
		best := -1
		for w := 0; w < c.NumWorkers(); w++ {
			if counts[w] >= c.Worker(w).Slots {
				continue
			}
			if best == -1 || loads[w] < loads[best] {
				best = w
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("placement: ran out of slots")
		}
		pl.Assign(t, best)
		counts[best]++
		loads[best] += norm(u.Task(t.Op))
	}
	return pl, nil
}

// CAPS adapts the contention-aware placement search to the Strategy
// interface. If Alpha is the zero vector, thresholds are established by
// auto-tuning on every Place call; otherwise the fixed Alpha is used.
type CAPS struct {
	// Alpha is the pruning threshold vector; the zero value triggers
	// auto-tuning (§5.2).
	Alpha costmodel.Vector
	// AutoTune configures threshold auto-tuning when Alpha is zero.
	// The zero value means caps.DefaultAutoTuneOptions.
	AutoTune *caps.AutoTuneOptions
	// Search carries extra search options; Alpha and Mode are overridden.
	Search caps.Options
}

// Name implements Strategy.
func (CAPS) Name() string { return "caps" }

var _ WarmPlacer = CAPS{}

// Place implements Strategy. The search runs in Exhaustive mode bounded by
// the tuned thresholds, returning the Pareto-optimal plan with minimum
// scalarized cost among threshold-satisfying plans; if the exhaustive pass is
// cut short by Search.MaxNodes or Search.Timeout, the best plan found so far
// is returned.
func (s CAPS) Place(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage, seed int64) (*dataflow.Plan, error) {
	return s.PlaceWarm(ctx, p, c, u, seed, nil)
}

// PlaceWarm implements WarmPlacer: prev seeds the search's exploration order
// (caps.Options.Warm), so a still-feasible previous plan is rediscovered in a
// fraction of the nodes while the explored space — and therefore the selected
// plan — stays identical to a cold search.
func (s CAPS) PlaceWarm(ctx context.Context, p *dataflow.PhysicalGraph, c *cluster.Cluster, u *costmodel.Usage, _ int64, prev *dataflow.Plan) (*dataflow.Plan, error) {
	if err := checkCapacity(p, c); err != nil {
		return nil, err
	}
	alpha := s.Alpha
	if alpha == (costmodel.Vector{}) {
		atOpts := caps.DefaultAutoTuneOptions()
		if s.AutoTune != nil {
			atOpts = *s.AutoTune
		}
		tuned, err := caps.AutoTune(ctx, p, c, u, atOpts)
		if err != nil {
			return nil, fmt.Errorf("placement: auto-tuning: %w", err)
		}
		alpha = tuned.Alpha
	}
	opts := s.Search
	opts.Alpha = alpha
	opts.Mode = caps.Exhaustive
	opts.Warm = prev
	// Explore in the same reordered sequence as the auto-tuning probes, so
	// a plan the probe discovered stays within reach of the node budget.
	opts.Reorder = true
	if opts.MaxNodes == 0 && opts.Timeout == 0 {
		// Keep online decisions bounded even on large deployments.
		opts.MaxNodes = 5_000_000
	}
	res, err := caps.Search(ctx, p, c, u, opts)
	if err != nil {
		return nil, err
	}
	if !res.Feasible {
		return nil, fmt.Errorf("placement: no plan satisfies alpha %v", alpha)
	}
	return res.Plan, nil
}

// ByName returns the named strategy, one of "default", "evenly", "random",
// "greedy", "caps".
func ByName(name string) (Strategy, error) {
	switch name {
	case "default":
		return FlinkDefault{}, nil
	case "evenly":
		return FlinkEvenly{}, nil
	case "random":
		return Random{}, nil
	case "greedy":
		return Greedy{}, nil
	case "caps":
		return CAPS{}, nil
	default:
		return nil, fmt.Errorf("placement: unknown strategy %q", name)
	}
}
