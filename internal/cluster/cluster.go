// Package cluster models the slot-oriented resource cluster presented to a
// stream processor's scheduler: a set of homogeneous workers (VMs, containers
// or bare-metal nodes), each exposing a fixed number of compute slots while
// sharing the worker's memory, disk-I/O and network bandwidth among all
// co-located tasks.
package cluster

import "fmt"

// Worker describes one node of the cluster.
type Worker struct {
	// ID is a stable human-readable identifier (e.g. "tm-3" or an IP).
	ID string
	// Slots is the number of compute slots; each slot hosts at most one task.
	Slots int
	// CPU is the compute capacity in CPU-seconds per second (i.e. number of
	// cores, assuming per-record CPU unit costs are measured in core-seconds).
	CPU float64
	// IOBandwidth is the disk bandwidth in bytes/second available to the
	// state backend (reads + writes combined).
	IOBandwidth float64
	// NetBandwidth is the outbound network bandwidth in bytes/second.
	NetBandwidth float64
}

// Cluster is an ordered set of workers. Worker indices (0-based positions)
// are the worker references used by placement plans.
type Cluster struct {
	workers []Worker
}

// New creates a cluster from the given workers. It returns an error if any
// worker is malformed or IDs collide.
func New(workers []Worker) (*Cluster, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	seen := make(map[string]bool, len(workers))
	for i, w := range workers {
		if w.ID == "" {
			return nil, fmt.Errorf("cluster: worker %d has empty ID", i)
		}
		if seen[w.ID] {
			return nil, fmt.Errorf("cluster: duplicate worker ID %q", w.ID)
		}
		seen[w.ID] = true
		if w.Slots <= 0 {
			return nil, fmt.Errorf("cluster: worker %q has %d slots", w.ID, w.Slots)
		}
		if w.CPU <= 0 || w.IOBandwidth <= 0 || w.NetBandwidth <= 0 {
			return nil, fmt.Errorf("cluster: worker %q has non-positive capacity", w.ID)
		}
	}
	return &Cluster{workers: append([]Worker(nil), workers...)}, nil
}

// Homogeneous builds a cluster of n identical workers, the resource model
// assumed by the paper's formulation (§4.1). IDs are "w0".."w<n-1>".
func Homogeneous(n, slots int, cpu, ioBW, netBW float64) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: non-positive worker count %d", n)
	}
	ws := make([]Worker, n)
	for i := range ws {
		ws[i] = Worker{
			ID:           fmt.Sprintf("w%d", i),
			Slots:        slots,
			CPU:          cpu,
			IOBandwidth:  ioBW,
			NetBandwidth: netBW,
		}
	}
	return New(ws)
}

// NumWorkers returns the number of workers.
func (c *Cluster) NumWorkers() int { return len(c.workers) }

// Worker returns the worker at index i.
func (c *Cluster) Worker(i int) Worker { return c.workers[i] }

// Workers returns a copy of all workers.
func (c *Cluster) Workers() []Worker { return append([]Worker(nil), c.workers...) }

// TotalSlots returns the total number of compute slots across workers.
func (c *Cluster) TotalSlots() int {
	n := 0
	for _, w := range c.workers {
		n += w.Slots
	}
	return n
}

// SlotsPerWorker returns the uniform slot count if all workers expose the
// same number of slots, and an error otherwise. The CAPS formulation assumes
// homogeneous workers; heterogeneous clusters must be handled by the caller.
func (c *Cluster) SlotsPerWorker() (int, error) {
	s := c.workers[0].Slots
	for _, w := range c.workers[1:] {
		if w.Slots != s {
			return 0, fmt.Errorf("cluster: heterogeneous slot counts (%d vs %d)", s, w.Slots)
		}
	}
	return s, nil
}

// IsHomogeneous reports whether all workers have identical slot counts and
// capacities.
func (c *Cluster) IsHomogeneous() bool {
	w0 := c.workers[0]
	for _, w := range c.workers[1:] {
		if w.Slots != w0.Slots || w.CPU != w0.CPU ||
			w.IOBandwidth != w0.IOBandwidth || w.NetBandwidth != w0.NetBandwidth {
			return false
		}
	}
	return true
}

// Fits reports whether numTasks tasks can be deployed on the cluster
// (the paper's model assumption that total slots suffice).
func (c *Cluster) Fits(numTasks int) bool { return numTasks <= c.TotalSlots() }

// Subset returns a new cluster consisting of the first n workers. It is used
// by auto-scaling experiments where DS2 grows or shrinks the worker pool.
func (c *Cluster) Subset(n int) (*Cluster, error) {
	if n <= 0 || n > len(c.workers) {
		return nil, fmt.Errorf("cluster: subset size %d out of range [1,%d]", n, len(c.workers))
	}
	return New(c.workers[:n])
}
