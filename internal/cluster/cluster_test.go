package cluster

import "testing"

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		workers []Worker
	}{
		{"empty", nil},
		{"empty ID", []Worker{{ID: "", Slots: 4, CPU: 4, IOBandwidth: 1, NetBandwidth: 1}}},
		{"dup ID", []Worker{
			{ID: "a", Slots: 4, CPU: 4, IOBandwidth: 1, NetBandwidth: 1},
			{ID: "a", Slots: 4, CPU: 4, IOBandwidth: 1, NetBandwidth: 1},
		}},
		{"zero slots", []Worker{{ID: "a", Slots: 0, CPU: 4, IOBandwidth: 1, NetBandwidth: 1}}},
		{"zero cpu", []Worker{{ID: "a", Slots: 4, CPU: 0, IOBandwidth: 1, NetBandwidth: 1}}},
		{"zero io", []Worker{{ID: "a", Slots: 4, CPU: 4, IOBandwidth: 0, NetBandwidth: 1}}},
		{"zero net", []Worker{{ID: "a", Slots: 4, CPU: 4, IOBandwidth: 1, NetBandwidth: 0}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.workers); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestHomogeneous(t *testing.T) {
	c, err := Homogeneous(4, 4, 4.0, 100e6, 1.25e9)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumWorkers() != 4 {
		t.Errorf("NumWorkers = %d", c.NumWorkers())
	}
	if c.TotalSlots() != 16 {
		t.Errorf("TotalSlots = %d", c.TotalSlots())
	}
	s, err := c.SlotsPerWorker()
	if err != nil || s != 4 {
		t.Errorf("SlotsPerWorker = %d, %v", s, err)
	}
	if !c.IsHomogeneous() {
		t.Error("homogeneous cluster reported heterogeneous")
	}
	if !c.Fits(16) || c.Fits(17) {
		t.Error("Fits wrong")
	}
	if c.Worker(2).ID != "w2" {
		t.Errorf("Worker(2).ID = %q", c.Worker(2).ID)
	}
	if len(c.Workers()) != 4 {
		t.Error("Workers() length wrong")
	}
	if _, err := Homogeneous(0, 4, 1, 1, 1); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestHeterogeneousSlots(t *testing.T) {
	c, err := New([]Worker{
		{ID: "a", Slots: 4, CPU: 4, IOBandwidth: 1, NetBandwidth: 1},
		{ID: "b", Slots: 8, CPU: 4, IOBandwidth: 1, NetBandwidth: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SlotsPerWorker(); err == nil {
		t.Error("heterogeneous slots not detected")
	}
	if c.IsHomogeneous() {
		t.Error("IsHomogeneous true for heterogeneous cluster")
	}
}

func TestSubset(t *testing.T) {
	c, _ := Homogeneous(6, 4, 4, 1, 1)
	sub, err := c.Subset(3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumWorkers() != 3 || sub.Worker(0).ID != "w0" {
		t.Errorf("Subset wrong: %d workers", sub.NumWorkers())
	}
	if _, err := c.Subset(0); err == nil {
		t.Error("Subset(0) accepted")
	}
	if _, err := c.Subset(7); err == nil {
		t.Error("oversized subset accepted")
	}
}
