package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// lockorderAnalyzer reports cyclic lock-acquisition orders — the static
// shape of the wire-credit fan-in deadlock: goroutine 1 takes A then B,
// goroutine 2 takes B then A, and under contention both block forever. The
// analysis is whole-program:
//
//   - every Lock/RLock site is classified into a lock class — the declaring
//     struct's field ("engine.Meter.mu") or a package-level variable
//     ("caps.planMu") — so distinct instances of one mutex field share a
//     class and cross-package orders line up;
//   - a forward may-analysis over each function's CFG computes which
//     classes can be held at every statement (defer Unlock keeps the lock
//     held to the end of the function, explicit Unlock releases it on that
//     path);
//   - held sets propagate through the call graph: calling f while holding A
//     adds edges from A to every class f may transitively acquire. Calls
//     launched on a new goroutine are excluded — the new goroutine does not
//     inherit the caller's held locks;
//   - functions following the `…Locked` caller-holds convention enter with
//     their guarded fields' mutex classes already held, so the convention
//     the locks analyzer enforces also contributes ordering edges.
//
// Edges between two instances of the same class are skipped (same-class
// ordering needs a runtime tie-break the linter cannot see), and a cycle is
// reported once per participating acquisition edge so each site can carry
// its own //capslint:allow.
var lockorderAnalyzer = &Analyzer{
	Name:       "lockorder",
	Doc:        "cyclic lock-acquisition orders across the call graph (potential deadlocks)",
	RunProgram: runLockOrder,
}

// lockEdge is one ordered acquisition: to was acquired while from was held.
type lockEdge struct{ from, to string }

// lockEdgeSite is one program point creating an edge.
type lockEdgeSite struct {
	p    *Package
	node ast.Node
	via  string // callee name for interprocedural edges, "" for direct
}

type lockOrder struct {
	prog *Program
	// acquires is the transitive may-acquire summary per declared function.
	acquires map[*types.Func]map[string]bool
	// entryHeld maps `…Locked` functions to the classes their callers hold.
	entryHeld map[*types.Func]map[string]bool
	// goLaunched marks function literals started by a go statement.
	goLaunched map[*ast.FuncLit]bool
	// edges accumulates acquisition edges with provenance.
	edges map[lockEdge][]lockEdgeSite
}

func runLockOrder(prog *Program) []Diagnostic {
	lo := &lockOrder{
		prog:       prog,
		acquires:   make(map[*types.Func]map[string]bool),
		entryHeld:  make(map[*types.Func]map[string]bool),
		goLaunched: make(map[*ast.FuncLit]bool),
		edges:      make(map[lockEdge][]lockEdgeSite),
	}
	lo.collectGoLaunched()
	lo.buildSummaries()
	lo.collectEdges()
	return lo.report()
}

// collectGoLaunched records every `go func(){…}()` literal: their bodies
// run on a fresh goroutine and must not inherit the spawner's held set.
func (lo *lockOrder) collectGoLaunched() {
	for _, p := range lo.prog.Packages {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if gs, ok := n.(*ast.GoStmt); ok {
					if lit, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); isLit {
						lo.goLaunched[lit] = true
					}
				}
				return true
			})
		}
	}
}

// buildSummaries computes direct acquisitions, entry-held sets for the
// `…Locked` convention, and the transitive acquires fixpoint over the call
// graph.
func (lo *lockOrder) buildSummaries() {
	cg := lo.prog.CallGraph()
	guards := make(map[*types.Var]string) // guarded field -> mutex class
	for _, p := range lo.prog.Packages {
		for v, g := range collectGuardedFields(p) {
			guards[v] = p.Name + "." + g.structName + "." + g.muName
		}
	}
	nodes := cg.Nodes()
	for _, node := range nodes {
		direct := make(map[string]bool)
		var stack []ast.Node
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, method, isLock := lockCall(call); isLock && (method == "Lock" || method == "RLock") {
				if inGoContext(stack) {
					return true
				}
				if c := lo.lockClassOf(node.Pkg, call); c != "" {
					direct[c] = true
				}
			}
			return true
		})
		lo.acquires[node.Fn] = direct

		if strings.HasSuffix(node.Fn.Name(), "Locked") {
			held := make(map[string]bool)
			ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if s, found := node.Pkg.Info.Selections[sel]; found && s.Kind() == types.FieldVal {
					if v, isVar := s.Obj().(*types.Var); isVar {
						if c, guarded := guards[v]; guarded {
							held[c] = true
						}
					}
				}
				return true
			})
			if len(held) > 0 {
				lo.entryHeld[node.Fn] = held
			}
		}
	}
	// Transitive closure: acquires(f) ∪= acquires(callee) until stable.
	for changed := true; changed; {
		changed = false
		for _, node := range nodes {
			acc := lo.acquires[node.Fn]
			for _, cs := range node.Calls {
				if cs.NewGoroutine {
					continue
				}
				for c := range lo.acquires[cs.Callee] {
					if !acc[c] {
						acc[c] = true
						changed = true
					}
				}
			}
		}
	}
}

// lockClassOf names the lock class of a Lock/Unlock call: the mutex field's
// declaring struct ("pkg.Struct.mu"), a package-level mutex variable
// ("pkg.mu"), or, for a promoted method on an embedded mutex, the embedding
// type ("pkg.Struct"). Locals and unresolvable receivers return "" and are
// not tracked.
func (lo *lockOrder) lockClassOf(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv := ast.Unparen(sel.X)
	t := p.Info.TypeOf(recv)
	if t == nil {
		return ""
	}
	if isMutexType(t) {
		switch x := recv.(type) {
		case *ast.SelectorExpr:
			if s, found := p.Info.Selections[x]; found && s.Kind() == types.FieldVal {
				if owner := namedOf(s.Recv()); owner != nil {
					return ownerPkgName(owner, p) + "." + owner.Obj().Name() + "." + x.Sel.Name
				}
			}
			// Package-qualified variable: pkg.mu.
			if v, isVar := p.Info.Uses[x.Sel].(*types.Var); isVar && isPackageLevel(v) {
				return v.Pkg().Name() + "." + v.Name()
			}
		case *ast.Ident:
			if v, isVar := p.Info.Uses[x].(*types.Var); isVar && isPackageLevel(v) {
				return v.Pkg().Name() + "." + v.Name()
			}
		}
		return ""
	}
	// Promoted Lock/Unlock through an embedded mutex: class by the
	// embedding named type.
	if owner := namedOf(t); owner != nil {
		if _, isStruct := owner.Underlying().(*types.Struct); isStruct {
			return ownerPkgName(owner, p) + "." + owner.Obj().Name()
		}
	}
	return ""
}

func isMutexType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func ownerPkgName(n *types.Named, fallback *Package) string {
	if pkg := n.Obj().Pkg(); pkg != nil {
		return pkg.Name()
	}
	return fallback.Name
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// collectEdges runs the CFG may-analysis over every function body and
// records acquisition edges.
func (lo *lockOrder) collectEdges() {
	cg := lo.prog.CallGraph()
	for _, node := range cg.Nodes() {
		entry := lo.entryHeld[node.Fn]
		lo.analyzeBody(node.Pkg, node.Decl.Body, entry)
	}
	// Function literals get their own pass: empty entry held set (what the
	// enclosing function holds at launch/definition time is not tracked),
	// go-launched or not — their internal ordering still matters.
	for _, p := range lo.prog.Packages {
		for _, fb := range functionsOf(p) {
			if _, ok := fb.node.(*ast.FuncLit); ok {
				lo.analyzeBody(p, fb.body, nil)
			}
		}
	}
}

// heldSet is the dataflow fact: the set of lock classes that may be held.
type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

func (h heldSet) equal(o heldSet) bool {
	if len(h) != len(o) {
		return false
	}
	for k := range h {
		if !o[k] {
			return false
		}
	}
	return true
}

// analyzeBody runs the forward may-analysis over one function body.
func (lo *lockOrder) analyzeBody(p *Package, body *ast.BlockStmt, entry heldSet) {
	cfg := BuildCFG(body)
	in := make([]heldSet, len(cfg.Blocks))
	in[cfg.Entry.Index] = entry.clone()
	preds := cfg.Preds()
	// Iterate to fixpoint; the lattice (sets of classes, union) is finite.
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			state := in[b.Index]
			if state == nil {
				if b != cfg.Entry {
					merged := heldSet{}
					reachable := false
					for _, pr := range preds[b] {
						if in[pr.Index] != nil {
							reachable = true
							for k := range lo.transferBlock(p, pr, in[pr.Index], false) {
								merged[k] = true
							}
						}
					}
					if !reachable {
						continue
					}
					in[b.Index] = merged
					changed = true
				}
				continue
			}
			if b == cfg.Entry {
				// Entry keeps its seed.
			} else {
				merged := heldSet{}
				for _, pr := range preds[b] {
					if in[pr.Index] != nil {
						for k := range lo.transferBlock(p, pr, in[pr.Index], false) {
							merged[k] = true
						}
					}
				}
				if !merged.equal(state) {
					in[b.Index] = merged
					changed = true
				}
			}
		}
	}
	// Recording pass at the fixpoint.
	for _, b := range cfg.Blocks {
		if in[b.Index] != nil {
			lo.transferBlock(p, b, in[b.Index], true)
		}
	}
}

// transferBlock applies the block's nodes to the held set, optionally
// recording acquisition edges, and returns the out-state.
func (lo *lockOrder) transferBlock(p *Package, b *CFGBlock, state heldSet, record bool) heldSet {
	cur := state.clone()
	for _, n := range b.Nodes {
		lo.transferNode(p, n, cur, record)
	}
	return cur
}

// transferNode walks one CFG node (a simple statement or control
// expression), updating the held set in source order. Nested function
// literals and go statements are skipped: their bodies run elsewhere.
func (lo *lockOrder) transferNode(p *Package, n ast.Node, state heldSet, record bool) {
	if _, isGo := n.(*ast.GoStmt); isGo {
		return
	}
	if ds, isDefer := n.(*ast.DeferStmt); isDefer {
		// `defer mu.Unlock()` releases at exit — the lock stays held for
		// the rest of this function, which the per-block states already
		// express; deferred calls to other functions run with an unknown
		// held set and are not charged edges.
		_ = ds
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		if _, isGo := m.(*ast.GoStmt); isGo {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, method, isLock := lockCall(call); isLock {
			c := lo.lockClassOf(p, call)
			if c == "" {
				return true
			}
			switch method {
			case "Lock", "RLock":
				if record {
					for h := range state {
						if h != c {
							lo.addEdge(h, c, lockEdgeSite{p: p, node: call})
						}
					}
				}
				state[c] = true
			case "Unlock", "RUnlock":
				delete(state, c)
			}
			return true
		}
		if callee := calleeOf(p, call); callee != nil {
			if record {
				for a := range lo.acquires[callee] {
					for h := range state {
						if h != a {
							lo.addEdge(h, a, lockEdgeSite{p: p, node: call, via: callee.Name()})
						}
					}
				}
			}
		}
		return true
	})
}

func (lo *lockOrder) addEdge(from, to string, site lockEdgeSite) {
	lo.edges[lockEdge{from, to}] = append(lo.edges[lockEdge{from, to}], site)
}

// report finds strongly connected components of the acquisition-order graph
// and emits one diagnostic per in-cycle edge, anchored at its earliest
// program point.
func (lo *lockOrder) report() []Diagnostic {
	adj := make(map[string][]string)
	seen := make(map[lockEdge]bool)
	var keys []lockEdge
	for e := range lo.edges {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, e := range keys {
		if !seen[e] {
			seen[e] = true
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	scc := stronglyConnected(adj)
	var out []Diagnostic
	for _, e := range keys {
		comp, ok := scc[e.from]
		if !ok || scc[e.to] != comp || len(componentMembers(scc, comp)) < 2 {
			continue
		}
		cycle := shortestCycle(adj, scc, e)
		sites := lo.edges[e]
		sort.Slice(sites, func(i, j int) bool { return sites[i].node.Pos() < sites[j].node.Pos() })
		s := sites[0]
		via := ""
		if s.via != "" {
			via = fmt.Sprintf(" (via call to %s)", s.via)
		}
		out = append(out, diagAt(s.p, "lockorder", s.node,
			"acquires %s while holding %s%s; completes the lock-order cycle %s — a goroutine taking the opposite order deadlocks",
			e.to, e.from, via, strings.Join(cycle, " -> ")))
	}
	return out
}

// componentMembers lists the classes in one SCC.
func componentMembers(scc map[string]int, comp int) []string {
	var out []string
	for k, c := range scc {
		if c == comp {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// shortestCycle renders a minimal cycle through edge e: e.from -> e.to ->
// … -> e.from, found by BFS inside the SCC.
func shortestCycle(adj map[string][]string, scc map[string]int, e lockEdge) []string {
	comp := scc[e.from]
	prev := map[string]string{e.to: ""}
	queue := []string{e.to}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == e.from {
			break
		}
		next := append([]string(nil), adj[cur]...)
		sort.Strings(next)
		for _, n := range next {
			if scc[n] != comp {
				continue
			}
			if _, visited := prev[n]; !visited {
				prev[n] = cur
				queue = append(queue, n)
			}
		}
	}
	if _, found := prev[e.from]; !found {
		return []string{e.from, e.to, e.from} // degenerate; should not happen in an SCC
	}
	var back []string
	for cur := e.from; cur != ""; cur = prev[cur] {
		back = append(back, cur)
		if cur == e.to {
			break
		}
	}
	// back is [e.from … e.to]; the cycle is e.from -> e.to -> … -> e.from.
	cycle := []string{e.from}
	for i := len(back) - 1; i >= 0; i-- {
		cycle = append(cycle, back[i])
	}
	return cycle
}

// stronglyConnected is Tarjan's algorithm, iterative-friendly enough for
// lock graphs (a handful of nodes). Returns a component id per node; nodes
// in the same component are mutually reachable.
func stronglyConnected(adj map[string][]string) map[string]int {
	nodesSet := make(map[string]bool)
	for from, tos := range adj {
		nodesSet[from] = true
		for _, t := range tos {
			nodesSet[t] = true
		}
	}
	var nodes []string
	for n := range nodesSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	counter, comps := 0, 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		next := append([]string(nil), adj[v]...)
		sort.Strings(next)
		for _, w := range next {
			if _, visited := index[w]; !visited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = comps
				if w == v {
					break
				}
			}
			comps++
		}
	}
	for _, v := range nodes {
		if _, visited := index[v]; !visited {
			strong(v)
		}
	}
	return comp
}
