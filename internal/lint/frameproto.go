package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// frameprotoAnalyzer checks the distributed wire protocol for
// exhaustiveness and discipline:
//
//   - every frame-type constant declared between the frameInvalid and
//     frameTypeEnd sentinels must be handled somewhere in the program — a
//     `case` in a dispatch switch, or an ==/!= comparison (the handshake
//     frames FrameHello/FrameWelcome are validated that way). An unhandled
//     constant means a peer can legally send a frame the receiver drops on
//     the floor;
//   - every site that sets a Frame's Type — a composite literal or a field
//     assignment — must use a declared constant, never a raw numeric value,
//     so the constant block stays the single source of truth for the
//     protocol and the sentinels keep bounding the valid range.
//
// The analyzer is whole-program because the constants live in
// internal/engine while half the dispatch switches live in
// internal/controller. It is generic over the sentinel names: a package
// declaring its own frameInvalid/frameTypeEnd block (fixtures) gets the
// same treatment.
var frameprotoAnalyzer = &Analyzer{
	Name:       "frameproto",
	Doc:        "unhandled wire-frame types and Frame sends bypassing declared constants",
	RunProgram: runFrameproto,
}

const (
	frameStartSentinel = "frameInvalid"
	frameEndSentinel   = "frameTypeEnd"
)

// frameConst is one protocol constant and where it is declared.
type frameConst struct {
	obj  *types.Const
	pkg  *Package
	name *ast.Ident
}

type frameprotoState struct {
	prog *Program
	// protocol maps each declared frame-type constant (between the
	// sentinels, exclusive) to its declaration site.
	protocol map[*types.Const]*frameConst
	// sentinels are frameInvalid/frameTypeEnd: never required to be
	// handled, never valid to send.
	sentinels map[*types.Const]bool
	// typeFields are the Type fields of Frame structs declared alongside a
	// sentinel block.
	typeFields map[*types.Var]bool
	// frameStructs are those Frame named types.
	frameStructs map[*types.Named]bool
	handled      map[*types.Const]bool
}

func runFrameproto(prog *Program) []Diagnostic {
	st := &frameprotoState{
		prog:         prog,
		protocol:     make(map[*types.Const]*frameConst),
		sentinels:    make(map[*types.Const]bool),
		typeFields:   make(map[*types.Var]bool),
		frameStructs: make(map[*types.Named]bool),
		handled:      make(map[*types.Const]bool),
	}
	st.collectProtocol()
	if len(st.protocol) == 0 {
		return nil
	}
	st.collectHandled()
	var out []Diagnostic
	out = append(out, st.reportUnhandled()...)
	out = append(out, st.checkSendSites()...)
	return out
}

// collectProtocol finds every const block bracketed by the sentinels and
// records the protocol constants declared between them, plus the Frame
// struct (a struct named Frame with a Type field) of each declaring
// package.
func (st *frameprotoState) collectProtocol() {
	for _, p := range st.prog.Packages {
		found := false
		for _, f := range p.Files {
			for _, d := range f.Decls {
				gd, isGen := d.(*ast.GenDecl)
				if !isGen || gd.Tok != token.CONST {
					continue
				}
				if st.collectBlock(p, gd) {
					found = true
				}
			}
		}
		if found {
			st.collectFrameStruct(p)
		}
	}
}

// collectBlock records one const block if it is sentinel-bracketed,
// reporting whether it was.
func (st *frameprotoState) collectBlock(p *Package, gd *ast.GenDecl) bool {
	hasStart, hasEnd := false, false
	for _, spec := range gd.Specs {
		vs, isVal := spec.(*ast.ValueSpec)
		if !isVal {
			continue
		}
		for _, name := range vs.Names {
			switch name.Name {
			case frameStartSentinel:
				hasStart = true
			case frameEndSentinel:
				hasEnd = true
			}
		}
	}
	if !hasStart || !hasEnd {
		return false
	}
	inside := false
	for _, spec := range gd.Specs {
		vs, isVal := spec.(*ast.ValueSpec)
		if !isVal {
			continue
		}
		for _, name := range vs.Names {
			c, _ := p.Info.Defs[name].(*types.Const)
			if c == nil {
				continue
			}
			switch name.Name {
			case frameStartSentinel:
				inside = true
				st.sentinels[c] = true
			case frameEndSentinel:
				inside = false
				st.sentinels[c] = true
			default:
				if inside {
					st.protocol[c] = &frameConst{obj: c, pkg: p, name: name}
				}
			}
		}
	}
	return true
}

// collectFrameStruct records the Type field of the package's Frame struct,
// so send-site checks know which composite literals and assignments carry a
// frame type.
func (st *frameprotoState) collectFrameStruct(p *Package) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, isGen := d.(*ast.GenDecl)
			if !isGen || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, isType := spec.(*ast.TypeSpec)
				if !isType || ts.Name.Name != "Frame" {
					continue
				}
				strct, isStruct := ts.Type.(*ast.StructType)
				if !isStruct {
					continue
				}
				tn, _ := p.Info.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				if named, isNamed := tn.Type().(*types.Named); isNamed {
					st.frameStructs[named] = true
				}
				for _, field := range strct.Fields.List {
					for _, nameIdent := range field.Names {
						if nameIdent.Name != "Type" {
							continue
						}
						if v, isVar := p.Info.Defs[nameIdent].(*types.Var); isVar && v != nil {
							st.typeFields[v] = true
						}
					}
				}
			}
		}
	}
}

// collectHandled marks protocol constants mentioned by a switch case or an
// ==/!= comparison anywhere in the program.
func (st *frameprotoState) collectHandled() {
	for _, p := range st.prog.Packages {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CaseClause:
					for _, e := range x.List {
						st.markHandled(p, e)
					}
				case *ast.BinaryExpr:
					if x.Op == token.EQL || x.Op == token.NEQ {
						st.markHandled(p, x.X)
						st.markHandled(p, x.Y)
					}
				}
				return true
			})
		}
	}
}

func (st *frameprotoState) markHandled(p *Package, e ast.Expr) {
	if c := constOf(p, e); c != nil && st.protocol[c] != nil {
		st.handled[c] = true
	}
}

// constOf resolves an expression to the constant object it names, or nil.
func constOf(p *Package, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	c, _ := p.Info.Uses[id].(*types.Const)
	return c
}

// reportUnhandled flags every protocol constant no dispatch site mentions,
// at its declaration.
func (st *frameprotoState) reportUnhandled() []Diagnostic {
	var missing []*frameConst
	for c, fc := range st.protocol {
		if !st.handled[c] {
			missing = append(missing, fc)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].name.Pos() < missing[j].name.Pos() })
	var out []Diagnostic
	for _, fc := range missing {
		out = append(out, diagAt(fc.pkg, "frameproto", fc.name,
			"frame type %s is declared but no dispatch switch case or ==/!= comparison handles it; a peer sending it is silently dropped",
			fc.name.Name))
	}
	return out
}

// checkSendSites flags Frame construction and Type assignments whose value
// is a constant that is not a declared protocol constant.
func (st *frameprotoState) checkSendSites() []Diagnostic {
	var out []Diagnostic
	for _, p := range st.prog.Packages {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CompositeLit:
					named := namedOf(p.Info.TypeOf(x))
					if named == nil || !st.frameStructs[named] {
						return true
					}
					if v := frameTypeElt(x); v != nil {
						if d := st.checkTypeValue(p, v); d != nil {
							out = append(out, *d)
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range x.Lhs {
						sel, isSel := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !isSel || i >= len(x.Rhs) {
							continue
						}
						v, _ := p.Info.Uses[sel.Sel].(*types.Var)
						if v == nil || !st.typeFields[v] {
							continue
						}
						if d := st.checkTypeValue(p, x.Rhs[i]); d != nil {
							out = append(out, *d)
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// frameTypeElt returns the expression assigned to the Type field in a Frame
// composite literal: the keyed Type element, or the first positional one.
func frameTypeElt(lit *ast.CompositeLit) ast.Expr {
	for _, elt := range lit.Elts {
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			if key, isIdent := kv.Key.(*ast.Ident); isIdent && key.Name == "Type" {
				return kv.Value
			}
			continue
		}
		// Positional literal: Type is the first field.
		return elt
	}
	return nil
}

// checkTypeValue validates one frame-type value expression. Constants must
// name a declared protocol constant (sentinels and raw numbers are out);
// non-constant expressions are relays of already-validated frames and pass.
func (st *frameprotoState) checkTypeValue(p *Package, e ast.Expr) *Diagnostic {
	e = ast.Unparen(e)
	if c := constOf(p, e); c != nil {
		if st.protocol[c] != nil {
			return nil
		}
		what := "constant " + c.Name()
		if st.sentinels[c] {
			what = "sentinel " + c.Name()
		}
		d := diagAt(p, "frameproto", e,
			"Frame.Type set from %s, which is not a declared frame-type constant", what)
		return &d
	}
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		d := diagAt(p, "frameproto", e,
			"Frame.Type set from a raw constant value %s; use a declared frame-type constant", tv.Value.String())
		return &d
	}
	return nil
}
