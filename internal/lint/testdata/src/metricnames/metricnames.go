// Package controller is a capslint fixture exercising the metricnames
// analyzer against the real registry and telemetry hub types.
package controller

import (
	"capsys/internal/metrics"
	"capsys/internal/telemetry"
)

// Register creates one clean series, one malformed literal and one
// runtime-built name.
func Register(reg *metrics.Registry, tel *telemetry.Telemetry, task string) {
	reg.Counter("records_total").Inc(1)
	reg.Gauge("Worker-CPU%").Set(0.5)
	reg.Meter("rate." + task).Mark(1)
	tel.Histogram("latency.sink").Observe(0.001)
}

// Aggregate exercises the cluster-plane name families the coordinator
// maintains: worker- and cluster-prefixed series are necessarily built at
// runtime (the worker ID arrives over the wire), so they carry the
// deliberate-dynamic annotation; an unannotated concatenation of the same
// shape is still a finding; callback-gauge families stay literal.
func Aggregate(reg *metrics.Registry, tel *telemetry.Telemetry, worker string) {
	//capslint:allow metricnames worker-keyed series from heartbeat aggregation
	reg.Counter(metrics.WorkerMetricName(worker, "net.frames_sent")).Inc(1)
	//capslint:allow metricnames cluster rollup beside the worker series
	reg.Counter(metrics.ClusterMetricName("net.frames_sent")).Inc(1)
	reg.Gauge("worker." + worker + ".trace_dropped").Set(1)
	tel.SetGaugeFunc("cluster_workers_alive", nil, func() float64 { return 3 })
}

// Fusion exercises the operator-fusion and sharded-meter name families the
// engine registers. The engine.fuse.* counters are literal dotted families
// and must stay clean; per-shard series are runtime-built by construction
// (the shard index is allocated at attempt build), so the idiom is a
// literal family merged at snapshot — an unannotated per-shard name is a
// finding, and the deliberate-dynamic annotation documents the exception.
func Fusion(reg *metrics.Registry, shard string) {
	reg.Counter("engine.fuse.chains").Inc(1)
	reg.Counter("engine.fuse.tasks").Inc(1)
	reg.Counter("engine.fuse.records").Inc(1)
	reg.Gauge("meter.cpu.shard." + shard).Set(0.5)
	//capslint:allow metricnames per-shard debug series merged at snapshot
	reg.Gauge("meter.io.shard." + shard).Set(0.5)
}
