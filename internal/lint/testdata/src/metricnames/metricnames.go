// Package controller is a capslint fixture exercising the metricnames
// analyzer against the real registry and telemetry hub types.
package controller

import (
	"capsys/internal/metrics"
	"capsys/internal/telemetry"
)

// Register creates one clean series, one malformed literal and one
// runtime-built name.
func Register(reg *metrics.Registry, tel *telemetry.Telemetry, task string) {
	reg.Counter("records_total").Inc(1)
	reg.Gauge("Worker-CPU%").Set(0.5)
	reg.Meter("rate." + task).Mark(1)
	tel.Histogram("latency.sink").Observe(0.001)
}
