// Package controller is a capslint fixture exercising the metricnames
// analyzer against the real registry and telemetry hub types.
package controller

import (
	"fmt"

	"capsys/internal/metrics"
	"capsys/internal/telemetry"
)

// Register creates one clean series, one malformed literal, one cleanly
// folding concatenation and one concatenation whose constant shape is
// already illegal.
func Register(reg *metrics.Registry, tel *telemetry.Telemetry, task string) {
	reg.Counter("records_total").Inc(1)
	reg.Gauge("Worker-CPU%").Set(0.5)
	reg.Meter("rate." + task).Mark(1)
	reg.Meter("rate/" + task).Mark(1)
	tel.Histogram("latency.sink").Observe(0.001)
}

// Folded exercises compile-time folding: constant identifiers and concats
// of them validate on the folded value; Sprintf with a constant format
// validates on the verb-skeleton.
func Folded(reg *metrics.Registry, shardIdx int) {
	const family = "records"
	const badFamily = "Records%"
	reg.Counter(family + "_total").Inc(1)
	reg.Counter(badFamily).Inc(1)
	reg.Gauge(fmt.Sprintf("meter.cpu.shard.%d", shardIdx)).Set(0.5)
	reg.Gauge(fmt.Sprintf("Shard-%d-CPU", shardIdx)).Set(0.5)
}

// Aggregate exercises the cluster-plane name families the coordinator
// maintains: names built by opaque helper calls stay unverifiable and carry
// the deliberate-dynamic annotation (or are a finding without one), while a
// concatenation of the same shape folds to a clean skeleton and needs no
// annotation; callback-gauge families stay literal.
func Aggregate(reg *metrics.Registry, tel *telemetry.Telemetry, worker string) {
	//capslint:allow metricnames worker-keyed series from heartbeat aggregation
	reg.Counter(metrics.WorkerMetricName(worker, "net.frames_sent")).Inc(1)
	reg.Counter(metrics.ClusterMetricName("net.frames_sent")).Inc(1)
	reg.Gauge("worker." + worker + ".trace_dropped").Set(1)
	tel.SetGaugeFunc("cluster_workers_alive", nil, func() float64 { return 3 })
}

// Rescale exercises the elastic-rescale name families: the engine's keyed
// state gauges (literal families with a task label), the job-level rescale
// accounting counters, and the controller's re-placement timers are all
// literal dotted names and must stay clean; a per-operator downtime series
// built with an illegal separator is a finding.
func Rescale(reg *metrics.Registry, tel *telemetry.Telemetry, op string) {
	tel.SetGaugeFunc("state.bytes", map[string]string{"task": op}, func() float64 { return 0 })
	tel.SetGaugeFunc("state.keys", map[string]string{"task": op}, func() float64 { return 0 })
	reg.Gauge("state.total_bytes").Set(0)
	reg.Gauge("state.total_keys").Set(0)
	reg.Gauge("state.namespaces").Set(0)
	reg.Counter("job.rescales").Inc(1)
	reg.Gauge("job.rescale_downtime_seconds").Set(0.1)
	reg.Counter("job.rescale_moved_bytes").Inc(1 << 10)
	reg.Gauge("controller.placement_seconds").Set(0.01)
	reg.Gauge("controller.replacement_seconds").Set(0.01)
	reg.Counter("controller.tasks_moved").Inc(2)
	reg.Gauge("rescale downtime:" + op).Set(0.1)
}

// Fusion exercises the operator-fusion and sharded-meter name families the
// engine registers. The engine.fuse.* counters are literal dotted families
// and must stay clean; per-shard concatenations fold to a clean skeleton
// ("meter.cpu.shard.0") and pass without annotation.
func Fusion(reg *metrics.Registry, shard string) {
	reg.Counter("engine.fuse.chains").Inc(1)
	reg.Counter("engine.fuse.tasks").Inc(1)
	reg.Counter("engine.fuse.records").Inc(1)
	reg.Gauge("meter.cpu.shard." + shard).Set(0.5)
	reg.Gauge("meter.io.shard." + shard).Set(0.5)
}
