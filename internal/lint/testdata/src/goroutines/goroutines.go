// Package engine is a capslint fixture exercising the goroutines analyzer:
// go func literals must not capture loop variables and must carry a
// lifecycle tie-off.
package engine

import (
	"net"
	"sync"
)

// Spawn captures the loop variable and has no tie-off: two findings.
func Spawn(items []int, sink func(int)) {
	for _, it := range items {
		go func() {
			sink(it)
		}()
	}
}

// SpawnJoined passes the loop variable as an argument and joins via the
// WaitGroup; must not be flagged.
func SpawnJoined(items []int, sink func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			sink(it)
		}(it)
	}
	wg.Wait()
}

// SpawnStoppable watches a stop channel and must not be flagged.
func SpawnStoppable(stop chan struct{}, work chan int, sink func(int)) {
	go func() {
		for {
			select {
			case w := <-work:
				sink(w)
			case <-stop:
				return
			}
		}
	}()
}

// SpawnDraining ranges over a closable channel (the sender owns the
// lifecycle) and must not be flagged.
func SpawnDraining(work chan int, sink func(int)) {
	go func() {
		for w := range work {
			sink(w)
		}
	}()
}

// ServeConns is the goroutine-per-connection idiom the network data plane
// uses: the accept loop and each connection's reader loop block in
// Accept/Read and return on error, so their lifecycle is the connection's —
// closing the listener or conn stops them. No findings.
func ServeConns(ln net.Listener, handle func([]byte)) {
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					handle(buf[:n])
				}
			}(c)
		}
	}()
}

// SpawnConnWriter only writes; a write loop can block forever on a stuck
// peer without an error, so it is NOT the reader idiom and must be
// flagged.
func SpawnConnWriter(c net.Conn, src chan []byte) {
	go func() {
		for {
			b := <-src
			if _, err := c.Write(b); err != nil {
				return
			}
		}
	}()
}

// chainTask models the fused-chain runtime shape: a head task owns the
// goroutine, fused members are driven inline by direct calls.
type chainTask struct {
	fusedIn bool
	fused   []*chainTask
}

func (t *chainTask) drive() {
	for _, m := range t.fused {
		m.drive()
	}
}

// RunFusedChains is the operator-fusion idiom: one goroutine per chain HEAD,
// joined on a WaitGroup — fused members are skipped (no goroutine of their
// own) and run inline inside the head's literal via direct calls. The task
// pointer is passed as an argument, not captured. No findings.
func RunFusedChains(tasks []*chainTask) {
	var wg sync.WaitGroup
	for _, rt := range tasks {
		if rt.fusedIn {
			continue
		}
		wg.Add(1)
		go func(rt *chainTask) {
			defer wg.Done()
			rt.drive()
		}(rt)
	}
	wg.Wait()
}
