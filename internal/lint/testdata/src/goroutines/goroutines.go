// Package engine is a capslint fixture exercising the goroutines analyzer:
// go func literals must not capture loop variables and must carry a
// lifecycle tie-off.
package engine

import "sync"

// Spawn captures the loop variable and has no tie-off: two findings.
func Spawn(items []int, sink func(int)) {
	for _, it := range items {
		go func() {
			sink(it)
		}()
	}
}

// SpawnJoined passes the loop variable as an argument and joins via the
// WaitGroup; must not be flagged.
func SpawnJoined(items []int, sink func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			sink(it)
		}(it)
	}
	wg.Wait()
}

// SpawnStoppable watches a stop channel and must not be flagged.
func SpawnStoppable(stop chan struct{}, work chan int, sink func(int)) {
	go func() {
		for {
			select {
			case w := <-work:
				sink(w)
			case <-stop:
				return
			}
		}
	}()
}

// SpawnDraining ranges over a closable channel (the sender owns the
// lifecycle) and must not be flagged.
func SpawnDraining(work chan int, sink func(int)) {
	go func() {
		for w := range work {
			sink(w)
		}
	}()
}
