// Package lockfix is a capslint fixture exercising the lockorder analyzer:
// lock-acquisition edges collected over the CFG and call graph, with cyclic
// orders reported as potential deadlocks.
package lockfix

import "sync"

type registry struct {
	mu    sync.Mutex
	peers map[string]*peer
}

type peer struct {
	mu    sync.Mutex
	score int
}

// bump acquires only the peer lock; callers holding the registry lock give
// the interprocedural edge registry.mu -> peer.mu.
func (p *peer) bump() {
	p.mu.Lock()
	p.score++
	p.mu.Unlock()
}

// Promote takes registry.mu then (via bump) peer.mu — the canonical order.
func (r *registry) Promote(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.peers[name]; ok {
		p.bump()
	}
}

// Rebalance is the seeded deadlock: it takes peer.mu then registry.mu,
// the opposite of Promote's order.
func (r *registry) Rebalance(p *peer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r.mu.Lock()
	r.peers["x"] = p
	r.mu.Unlock()
}

// Sequential releases the first lock before taking the second: no edge, no
// finding.
func (r *registry) Sequential(p *peer) {
	r.mu.Lock()
	delete(r.peers, "y")
	r.mu.Unlock()
	p.mu.Lock()
	p.score = 0
	p.mu.Unlock()
}

var stateMu sync.Mutex
var logMu sync.Mutex

// Snapshot orders the package-level locks state -> log.
func Snapshot() {
	stateMu.Lock()
	defer stateMu.Unlock()
	logMu.Lock()
	logMu.Unlock()
}

// Flush takes the opposite order only inside a go-launched literal; the new
// goroutine does not inherit logMu, so there is no cycle and no finding.
func Flush(done chan struct{}) {
	logMu.Lock()
	defer logMu.Unlock()
	go func() {
		stateMu.Lock()
		stateMu.Unlock()
		close(done)
	}()
}
