// Package caps is a capslint fixture exercising overlapping findings: one
// line that trips two different checks, with an allow naming only one of
// them. Suppression is per-check, so the other finding must survive.
package caps

import (
	"time"

	"capsys/internal/metrics"
)

// TwoFindingsOneLine reads the wall clock (determinism) while building an
// unfoldably-illegal metric name (metricnames) on the same line. The allow
// above names only determinism: the metricnames finding stays.
func TwoFindingsOneLine(reg *metrics.Registry) {
	//capslint:allow determinism fixture exercises per-check same-line scoping
	reg.Gauge("Wall." + time.Now().String()).Set(1)
}
