// Package caps is a capslint fixture exercising the suppression comments:
// valid allows (same line and line above), an allow with no reason, an
// allow naming an unknown check, an allow naming nothing, and a stale allow
// that suppresses no finding.
package caps

import "time"

// SuppressedInline is annotated on the flagged line and must not be
// reported.
func SuppressedInline() time.Time {
	return time.Now() //capslint:allow determinism fixture exercises same-line suppression
}

// SuppressedAbove is annotated on the line above and must not be reported.
func SuppressedAbove() time.Time {
	//capslint:allow determinism fixture exercises line-above suppression
	return time.Now()
}

// MissingReason gives no reason: the allow itself is a finding and the
// wall-clock read stays reported.
func MissingReason() time.Time {
	return time.Now() //capslint:allow determinism
}

// UnknownCheck names a check that does not exist.
func UnknownCheck() int {
	//capslint:allow nosuchcheck misspelled check name
	return 0
}

// NamesNothing has an allow with no check at all.
func NamesNothing() int {
	//capslint:allow
	return 0
}

// Stale suppresses nothing; reported only under -strict.
func Stale() int {
	//capslint:allow determinism nothing on this or the next line to suppress
	return 42
}
