// Package framefix is a capslint fixture exercising the frameproto
// analyzer: every frame-type constant between the frameInvalid and
// frameTypeEnd sentinels must be handled by a dispatch switch or an ==/!=
// comparison, and every site setting a Frame's Type must use a declared
// constant.
package framefix

const (
	frameInvalid byte = iota

	FramePing   // handled by the dispatch switch
	FramePong   // handled by an == comparison
	FrameGossip // seeded violation: no dispatch site mentions it

	frameTypeEnd
)

// Frame is the fixture's wire unit, mirroring the engine's.
type Frame struct {
	Type    byte
	Payload []byte
}

func dispatch(f Frame) bool {
	switch f.Type {
	case FramePing:
		return true
	}
	return false
}

func isPong(f Frame) bool { return f.Type == FramePong }

// ping uses a declared constant and is not flagged.
func ping() Frame { return Frame{Type: FramePing} }

// bogus invents a wire value outside the declared protocol.
func bogus() Frame { return Frame{Type: 9} }

// poison writes a sentinel onto the wire.
func poison(f *Frame) { f.Type = frameInvalid }

// relay forwards an already-validated frame; a non-constant Type is fine.
func relay(f Frame, out chan Frame) { out <- Frame{Type: f.Type, Payload: f.Payload} }
