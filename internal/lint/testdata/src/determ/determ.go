// Package caps is a capslint fixture exercising the determinism analyzer:
// the package clause opts this directory into the deterministic set. The
// golden test pins every finding (and non-finding) below by file:line.
package caps

import (
	"math/rand"
	"sort"
	"time"
)

// WallClock reads the wall clock twice and draws from the global source.
func WallClock() time.Duration {
	start := time.Now()
	_ = rand.Intn(10)
	return time.Since(start)
}

// SumInOrder observes map iteration order: float accumulation is not
// associative and the gathered key order leaks into the result.
func SumInOrder(m map[string]float64) (float64, []string) {
	total := 0.0
	var order []string
	for k, v := range m {
		total += v
		order = append(order, k)
	}
	return total, order
}

// GatherSorted is the gather-then-sort idiom and must not be flagged.
func GatherSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Rebuild writes through the (injective) range key and must not be flagged.
func Rebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Seeded uses an explicitly seeded source and must not be flagged.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// CountOnly ranges a map without observing order and must not be flagged.
func CountOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
