// Package engine is a capslint fixture exercising the chans analyzer:
// sends on bounded channels must sit in a select with a stop/ctx or
// default case.
package engine

import "sync"

// Forward performs a bare send that blocks forever once the receiver dies.
func Forward(in, out chan int) {
	for v := range in {
		out <- v
	}
}

// ForwardNoEscape sends inside a select, but every case blocks.
func ForwardNoEscape(out, spill chan int, v int) {
	select {
	case out <- v:
	case spill <- v:
	}
}

// ForwardStoppable is the canonical cancellable send and must not be
// flagged.
func ForwardStoppable(out chan int, stop chan struct{}, v int) bool {
	select {
	case out <- v:
		return true
	case <-stop:
		return false
	}
}

// TrySend is best-effort via default and must not be flagged.
func TrySend(out chan int, v int) bool {
	select {
	case out <- v:
		return true
	default:
		return false
	}
}

// FanOut is the sized fan-in shape: one goroutine per job, each sending at
// most once into a channel with capacity len(jobs). The bare send can
// never block and must not be flagged.
func FanOut(jobs []func() error) error {
	var wg sync.WaitGroup
	errCh := make(chan error, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(j func() error) {
			defer wg.Done()
			if err := j(); err != nil {
				errCh <- err
			}
		}(j)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// FanOutLooped sizes the channel to the fan-in but sends repeatedly per
// goroutine, so the capacity does not bound the sends: still flagged.
func FanOutLooped(batches [][]int) {
	var wg sync.WaitGroup
	out := make(chan int, len(batches))
	for _, b := range batches {
		wg.Add(1)
		go func(b []int) {
			defer wg.Done()
			for _, v := range b {
				out <- v
			}
		}(b)
	}
	wg.Wait()
}

// FanOutWrongSize sizes the channel to a different collection than the one
// fanned over, so the bound is not established: still flagged.
func FanOutWrongSize(jobs []func() error, others []int) {
	var wg sync.WaitGroup
	errCh := make(chan error, len(others))
	for _, j := range jobs {
		wg.Add(1)
		go func(j func() error) {
			defer wg.Done()
			if err := j(); err != nil {
				errCh <- err
			}
		}(j)
	}
	wg.Wait()
}
