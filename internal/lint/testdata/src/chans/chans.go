// Package engine is a capslint fixture exercising the chans analyzer:
// sends on bounded channels must sit in a select with a stop/ctx or
// default case.
package engine

// Forward performs a bare send that blocks forever once the receiver dies.
func Forward(in, out chan int) {
	for v := range in {
		out <- v
	}
}

// ForwardNoEscape sends inside a select, but every case blocks.
func ForwardNoEscape(out, spill chan int, v int) {
	select {
	case out <- v:
	case spill <- v:
	}
}

// ForwardStoppable is the canonical cancellable send and must not be
// flagged.
func ForwardStoppable(out chan int, stop chan struct{}, v int) bool {
	select {
	case out <- v:
		return true
	case <-stop:
		return false
	}
}

// TrySend is best-effort via default and must not be flagged.
func TrySend(out chan int, v int) bool {
	select {
	case out <- v:
		return true
	default:
		return false
	}
}
