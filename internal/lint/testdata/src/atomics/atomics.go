// Package atomfix is a capslint fixture exercising the atomics analyzer:
// once a field is touched through sync/atomic, every access must be — plain
// reads, writes and struct copies are flagged.
package atomfix

import "sync/atomic"

// shard mirrors the engine's MeterShard contract: tokens is published with
// atomic stores and polled with atomic loads; hits uses an atomic value
// type.
type shard struct {
	tokens int64
	hits   atomic.Int64
}

func (s *shard) publish(n int64) { atomic.StoreInt64(&s.tokens, n) }

func (s *shard) poll() int64 { return atomic.LoadInt64(&s.tokens) }

// plainRead is the seeded violation: a non-atomic read of tokens races with
// publish.
func (s *shard) plainRead() int64 { return s.tokens }

// reset writes tokens plainly.
func (s *shard) reset() { s.tokens = 0 }

// newShard initializes before publication, which is safe and not flagged.
func newShard(n int64) *shard { return &shard{tokens: n} }

// total ranges by value, copying each shard's atomic state mid-flight.
func total(shards []shard) int64 {
	var sum int64
	for _, sh := range shards {
		sum += sh.hits.Load()
	}
	return sum
}

// totalByIndex iterates without copying and is not flagged.
func totalByIndex(shards []*shard) int64 {
	var sum int64
	for _, sh := range shards {
		sum += sh.hits.Load()
	}
	return sum
}

// dup copies the whole struct through a dereference.
func dup(s *shard) int64 {
	snap := *s
	return snap.hits.Load()
}

func consume(s shard) int64 { return s.hits.Load() }

// byValue passes the struct (and its atomic cells) by value.
func byValue(s *shard) int64 { return consume(*s) }
