// Package engine is a capslint fixture exercising the locks analyzer:
// Lock/Unlock pairing on every return path and `guarded by <mu>` field
// annotations.
package engine

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Add is the canonical defer pattern and must not be flagged.
func (c *counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Leak never releases the mutex.
func (c *counter) Leak() {
	c.mu.Lock()
	c.n++
}

// Escape releases explicitly, but an early return escapes with the lock
// held.
func (c *counter) Escape(cond bool) int {
	c.mu.Lock()
	if cond {
		return 0
	}
	v := c.n
	c.mu.Unlock()
	return v
}

// Straight locks and unlocks in the same block with no return in between
// and must not be flagged.
func (c *counter) Straight() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Unguarded reads a guarded field without taking the mutex.
func (c *counter) Unguarded() int {
	return c.n
}

// nLocked follows the caller-holds-the-lock naming convention and must not
// be flagged.
func (c *counter) nLocked() int {
	return c.n
}
