// Package lint is capslint: a project-specific static analysis suite built
// purely on the standard library's go/parser, go/ast, go/types and go/token.
//
// The Go compiler cannot see the invariants CAPSys's correctness rests on:
// the CAPS search must be bitwise deterministic (the golden and property
// tests replay it), the engine's shared token-bucket meters must never be
// touched outside their guarding mutex, and bounded-channel sends must stay
// cancellable or backpressure becomes deadlock. capslint checks those
// invariants before the code runs, on every `make verify`:
//
//   - determinism: wall-clock reads, unseeded global math/rand and
//     nondeterministic map iteration inside the deterministic packages
//   - locks: Lock calls without an Unlock on every return path, plus
//     "guarded by <mu>" field annotations
//   - chans: bounded-channel sends outside a cancellable select
//   - goroutines: goroutine literals without a lifecycle tie-off
//   - metricnames: telemetry names must be clean string literals or
//     constant-foldable Sprintf/concat families
//   - lockorder: cyclic lock-acquisition orders across the call graph
//     (potential deadlocks)
//   - atomics: fields accessed through sync/atomic must never be read,
//     written or copied plainly
//   - frameproto: every declared wire-frame type is handled by a dispatch
//     switch, and every Frame literal uses a declared constant
//
// The first five are per-package syntax/type checks. The last three are
// whole-program: they run once over every loaded package together (the CFG
// and call-graph foundation in cfg.go and callgraph.go), so `capslint ./...`
// sees lock edges and frame handlers wherever they live.
//
// Findings are suppressed in place with
//
//	//capslint:allow <check> <reason>
//
// on the flagged line or the line above. A suppression without a reason is
// itself a finding; a suppression that suppresses nothing is reported in
// strict mode.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"capsys/internal/clock"
)

// Diagnostic is one finding, addressed by file:line.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Suggestion, when non-empty, is a mechanical rewrite of the flagged
	// line, printed by the -diff flag.
	Suggestion string `json:"suggestion,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the check in output, -checks/-disable flags and
	// //capslint:allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Packages restricts the check to packages with these names (the
	// package clause, not the import path); nil means every package.
	Packages []string
	// Exclude skips packages with these names (applied after Packages).
	Exclude []string
	// Run reports the raw findings for one package; suppression filtering
	// happens in the driver. Exactly one of Run and RunProgram is set.
	Run func(p *Package) []Diagnostic
	// RunProgram reports findings for the whole program at once. Analyzers
	// that need cross-package context (the call graph, frame handlers in a
	// different package than the frame constants) use this instead of Run.
	RunProgram func(prog *Program) []Diagnostic
}

func (a *Analyzer) appliesTo(pkgName string) bool {
	for _, e := range a.Exclude {
		if e == pkgName {
			return false
		}
	}
	if a.Packages == nil {
		return true
	}
	for _, n := range a.Packages {
		if n == pkgName {
			return true
		}
	}
	return false
}

// SuppressCheck is the pseudo-check name for diagnostics about the
// suppression comments themselves.
const SuppressCheck = "suppress"

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		determinismAnalyzer,
		locksAnalyzer,
		chansAnalyzer,
		goroutinesAnalyzer,
		metricnamesAnalyzer,
		lockorderAnalyzer,
		atomicsAnalyzer,
		frameprotoAnalyzer,
	}
}

// Program is the set of packages analyzed together. Whole-program analyzers
// receive it instead of a single package; the call graph is built lazily on
// first use and shared between them.
type Program struct {
	Packages []*Package

	cg *CallGraph
}

// CallGraph returns the program's static call graph, building it on first
// use.
func (prog *Program) CallGraph() *CallGraph {
	if prog.cg == nil {
		prog.cg = buildCallGraph(prog)
	}
	return prog.cg
}

// Config selects checks and modes for a run.
type Config struct {
	// Enable lists check names to run (nil = all).
	Enable []string
	// Disable lists check names to skip.
	Disable []string
	// Strict additionally reports stale suppressions.
	Strict bool
}

func (c Config) selected() ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	if c.Enable == nil {
		out = Analyzers()
	} else {
		for _, n := range c.Enable {
			a, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("lint: unknown check %q", n)
			}
			out = append(out, a)
		}
	}
	if len(c.Disable) > 0 {
		skip := make(map[string]bool, len(c.Disable))
		for _, n := range c.Disable {
			if _, ok := byName[n]; !ok {
				return nil, fmt.Errorf("lint: unknown check %q", n)
			}
			skip[n] = true
		}
		kept := out[:0]
		for _, a := range out {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		out = kept
	}
	return out, nil
}

// allow is one parsed //capslint:allow comment.
type allow struct {
	check  string
	reason string
	file   string
	line   int
	col    int
	valid  bool // has a check name and a reason
	used   bool
}

const allowPrefix = "//capslint:allow"

// parseAllows extracts suppression comments from a package's files.
func parseAllows(p *Package, knownChecks map[string]bool) (allows []*allow, diags []Diagnostic) {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				a := &allow{file: relFile(p, pos.Filename), line: pos.Line, col: pos.Column}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					diags = append(diags, Diagnostic{
						Check: SuppressCheck, File: a.file, Line: a.line, Col: a.col,
						Message: "suppression names no check: want //capslint:allow <check> <reason>",
					})
				case !knownChecks[fields[0]]:
					diags = append(diags, Diagnostic{
						Check: SuppressCheck, File: a.file, Line: a.line, Col: a.col,
						Message: fmt.Sprintf("suppression names unknown check %q", fields[0]),
					})
				case len(fields) == 1:
					a.check = fields[0]
					diags = append(diags, Diagnostic{
						Check: SuppressCheck, File: a.file, Line: a.line, Col: a.col,
						Message: fmt.Sprintf("suppression of %q gives no reason: want //capslint:allow %s <reason>", fields[0], fields[0]),
					})
				default:
					a.check = fields[0]
					a.reason = strings.Join(fields[1:], " ")
					a.valid = true
				}
				allows = append(allows, a)
			}
		}
	}
	return allows, diags
}

// relFile renders a source file path relative to the package's rendered
// directory root, keeping diagnostics stable across machines.
func relFile(p *Package, filename string) string {
	base := filepath.Base(filename)
	if p.Dir == "." || p.Dir == "" {
		return base
	}
	return p.Dir + "/" + base
}

// posOf converts a node position into (file, line, col) diagnostic fields.
func posOf(p *Package, pos token.Pos) (string, int, int) {
	ps := p.Fset.Position(pos)
	return relFile(p, ps.Filename), ps.Line, ps.Column
}

func diagAt(p *Package, check string, n ast.Node, format string, args ...any) Diagnostic {
	file, line, col := posOf(p, n.Pos())
	return Diagnostic{Check: check, File: file, Line: line, Col: col, Message: fmt.Sprintf(format, args...)}
}

// RunPackage lints one package in isolation: it is Run over a one-package
// program, so whole-program analyzers see only this package (which is how
// the golden fixtures exercise them).
func RunPackage(p *Package, cfg Config) ([]Diagnostic, error) {
	return Run([]*Package{p}, cfg)
}

// RunStats records where a run's wall time went, measured with an
// injectable clock so both the timing plumbing and the self-runtime budget
// gate are testable.
type RunStats struct {
	// PerCheck is the cumulative analysis time per check name.
	PerCheck map[string]time.Duration
	// Total is the whole run: analysis plus suppression filtering.
	Total time.Duration
}

// Run lints the packages as one program: per-package analyzers run on each
// applicable package, whole-program analyzers run once over all of them,
// then suppressions are applied and suppression-hygiene findings appended.
func Run(pkgs []*Package, cfg Config) ([]Diagnostic, error) {
	diags, _, err := RunTimed(pkgs, cfg, nil)
	return diags, err
}

// RunTimed is Run with per-check timing measured by clk (nil means the
// system clock).
func RunTimed(pkgs []*Package, cfg Config, clk clock.Clock) ([]Diagnostic, RunStats, error) {
	clk = clk.OrSystem()
	stats := RunStats{PerCheck: make(map[string]time.Duration)}
	start := clk()
	analyzers, err := cfg.selected()
	if err != nil {
		return nil, stats, err
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	prog := &Program{Packages: pkgs}
	// ran records, per package, which checks examined it: stale-suppression
	// detection must not fire for a check that skipped the package.
	ran := make(map[*Package]map[string]bool)
	for _, p := range pkgs {
		ran[p] = make(map[string]bool)
	}
	var raw []Diagnostic
	for _, a := range analyzers {
		t0 := clk()
		if a.RunProgram != nil {
			raw = append(raw, a.RunProgram(prog)...)
			for _, p := range pkgs {
				if a.appliesTo(p.Name) {
					ran[p][a.Name] = true
				}
			}
		} else {
			for _, p := range pkgs {
				if !a.appliesTo(p.Name) {
					continue
				}
				ran[p][a.Name] = true
				raw = append(raw, a.Run(p)...)
			}
		}
		stats.PerCheck[a.Name] += clk().Sub(t0)
	}
	var out []Diagnostic
	var allows []*allow
	allowPkg := make(map[*allow]*Package)
	for _, p := range pkgs {
		as, ds := parseAllows(p, known)
		out = append(out, ds...)
		for _, a := range as {
			allowPkg[a] = p
		}
		allows = append(allows, as...)
	}
	// Diagnostic file paths and allow file paths are rendered by the same
	// relFile, so matching on the path string is exact across packages.
	for _, d := range raw {
		suppressed := false
		for _, a := range allows {
			if a.valid && a.check == d.Check && a.file == d.File &&
				(a.line == d.Line || a.line == d.Line-1) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	if cfg.Strict {
		for _, a := range allows {
			// An allow for a check that did not run on this package is not
			// stale — it may suppress findings of a differently-scoped run.
			if a.valid && !a.used && ran[allowPkg[a]][a.check] {
				out = append(out, Diagnostic{
					Check: SuppressCheck, File: a.file, Line: a.line, Col: a.col,
					Message: fmt.Sprintf("stale suppression: no %s finding on this or the next line", a.check),
				})
			}
		}
	}
	sortDiagnostics(out)
	stats.Total = clk().Sub(start)
	return out, stats, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
