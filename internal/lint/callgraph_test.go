package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTestModule lays out a throwaway module for loader/call-graph tests
// and returns its root.
func writeTestModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestCallGraphGoroutineFlags: the direct call of a go statement and calls
// inside a go-launched literal are flagged NewGoroutine; argument
// evaluation and plain calls are not.
func TestCallGraphGoroutineFlags(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"x.go": `package x
func a() {
	b()
	go c(e())
	go func() { d() }()
	f := e
	f()
}
func b() {}
func c(int) {}
func d() {}
func e() int { return 0 }
`,
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, te := range p.TypeErrors {
		t.Fatalf("type error: %v", te)
	}
	prog := &Program{Packages: []*Package{p}}
	cg := prog.CallGraph()
	var aNode *CGNode
	for _, n := range cg.Nodes() {
		if n.Fn.Name() == "a" {
			aNode = n
		}
	}
	if aNode == nil {
		t.Fatal("no call-graph node for a")
	}
	want := map[string]bool{"b": false, "c": true, "d": true, "e": false}
	got := make(map[string]bool)
	for _, cs := range aNode.Calls {
		got[cs.Callee.Name()] = cs.NewGoroutine
	}
	for name, newG := range want {
		have, ok := got[name]
		if !ok {
			t.Errorf("call to %s missing from graph", name)
			continue
		}
		if have != newG {
			t.Errorf("call to %s: NewGoroutine = %v, want %v", name, have, newG)
		}
	}
	// f() goes through a function value and must not resolve.
	if len(aNode.Calls) != 4 {
		t.Errorf("a has %d resolved calls, want 4 (b, c, d, e)", len(aNode.Calls))
	}
}

// TestCallGraphCrossPackageIdentity: a call site in one package must
// resolve to the same *types.Func the callee's own package defined — the
// checked-once loader discipline the whole-program analyzers rest on.
func TestCallGraphCrossPackageIdentity(t *testing.T) {
	root := writeTestModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"p1/p1.go": `package p1
import "tmpmod/p2"
func Caller() { p2.Work() }
`,
		"p2/p2.go": `package p2
func Work() {}
`,
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	// Load in the order the CLI would: callers first, so p2 is first pulled
	// in as an import, then loaded as a target.
	pkg1, err := loader.Load(filepath.Join(root, "p1"))
	if err != nil {
		t.Fatal(err)
	}
	pkg2, err := loader.Load(filepath.Join(root, "p2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, te := range append(pkg1.TypeErrors, pkg2.TypeErrors...) {
		t.Fatalf("type error: %v", te)
	}
	prog := &Program{Packages: []*Package{pkg1, pkg2}}
	cg := prog.CallGraph()
	var caller *CGNode
	for _, n := range cg.Nodes() {
		if n.Fn.Name() == "Caller" {
			caller = n
		}
	}
	if caller == nil {
		t.Fatal("no node for Caller")
	}
	if len(caller.Calls) != 1 {
		t.Fatalf("Caller has %d calls, want 1", len(caller.Calls))
	}
	callee := cg.Node(caller.Calls[0].Callee)
	if callee == nil {
		t.Fatal("cross-package callee has no node: type-object identities diverged between Import and Load")
	}
	if callee.Pkg != pkg2 {
		t.Errorf("callee node belongs to %q, want the p2 package", callee.Pkg.Dir)
	}
}
