package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

var locksAnalyzer = &Analyzer{
	Name: "locks",
	Doc:  "Lock without Unlock on every return path; 'guarded by <mu>' field access checking",
	Run:  runLocks,
}

var unlockOf = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func runLocks(p *Package) []Diagnostic {
	out := runLockPairing(p)
	out = append(out, runGuardedFields(p)...)
	return out
}

// lockCall matches a (possibly deferred) <recv>.<method>() call and renders
// the receiver.
func lockCall(e ast.Expr) (recv, method string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		if r := exprString(sel.X); r != "" {
			return r, sel.Sel.Name, true
		}
	}
	return "", "", false
}

// runLockPairing checks, per function, that every Lock()/RLock() is
// released on all return paths: either a matching defer Unlock later in the
// function, or a matching explicit Unlock later in the same block with no
// return statement in between.
func runLockPairing(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, fn := range functionsOf(p) {
		// Gather deferred unlocks of this function (shallow: a nested
		// literal's defer releases nothing for us).
		type deferred struct {
			recv, method string
			pos          ast.Node
		}
		var defers []deferred
		inspectShallow(fn.body, func(n ast.Node) bool {
			if ds, ok := n.(*ast.DeferStmt); ok {
				if recv, method, ok := lockCall(ds.Call); ok {
					defers = append(defers, deferred{recv, method, ds})
				}
			}
			return true
		})
		// Visit every block shallowly and check each Lock statement.
		inspectShallow(fn.body, func(n ast.Node) bool {
			block, isBlock := n.(*ast.BlockStmt)
			if !isBlock {
				return true
			}
			for i, stmt := range block.List {
				es, isExpr := stmt.(*ast.ExprStmt)
				if !isExpr {
					continue
				}
				recv, method, ok := lockCall(es.X)
				if !ok || unlockOf[method] == "" {
					continue
				}
				want := unlockOf[method]
				// Deferred release anywhere after the Lock covers every
				// return path.
				covered := false
				for _, d := range defers {
					if d.recv == recv && d.method == want && d.pos.Pos() > es.Pos() {
						covered = true
						break
					}
				}
				if covered {
					continue
				}
				// Explicit release: a sibling statement later in this block.
				relIdx := -1
				for j := i + 1; j < len(block.List); j++ {
					if es2, ok2 := block.List[j].(*ast.ExprStmt); ok2 {
						if r2, m2, ok3 := lockCall(es2.X); ok3 && r2 == recv && m2 == want {
							relIdx = j
							break
						}
					}
				}
				if relIdx < 0 {
					out = append(out, diagAt(p, "locks", es,
						"%s.%s() has no matching %s on this path; add `defer %s.%s()` or release before returning",
						recv, method, want, recv, want))
					continue
				}
				// A return between Lock and the explicit Unlock escapes
				// with the lock held.
				for j := i + 1; j < relIdx; j++ {
					escaped := false
					inspectShallow(block.List[j], func(m ast.Node) bool {
						if _, isRet := m.(*ast.ReturnStmt); isRet {
							escaped = true
							return false
						}
						return true
					})
					if escaped {
						d := diagAt(p, "locks", es,
							"%s.%s() is released by an explicit %s below, but a return between them escapes with the lock held; use `defer %s.%s()`",
							recv, method, want, recv, want)
						d.Suggestion = "defer " + recv + "." + want + "()"
						out = append(out, d)
						break
					}
				}
			}
			return true
		})
	}
	return out
}

// guardedField records a `// guarded by <mu>` annotation on a struct field.
type guardedField struct {
	structName string
	fieldName  string
	muName     string
}

const guardedByMarker = "guarded by "

// collectGuardedFields finds annotated struct fields and maps their
// types.Var objects to the guard.
func collectGuardedFields(p *Package) map[*types.Var]guardedField {
	out := make(map[*types.Var]guardedField)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardNameFrom(field.Doc) // leading comment
				if mu == "" {
					mu = guardNameFrom(field.Comment) // trailing comment
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						out[v] = guardedField{structName: ts.Name.Name, fieldName: name.Name, muName: mu}
					}
				}
			}
			return true
		})
	}
	return out
}

func guardNameFrom(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
		idx := strings.Index(text, guardedByMarker)
		if idx < 0 {
			continue
		}
		rest := strings.Fields(text[idx+len(guardedByMarker):])
		if len(rest) > 0 {
			return strings.TrimRight(rest[0], ".,;")
		}
	}
	return ""
}

// runGuardedFields checks that every selector access to an annotated field
// happens in a function that visibly takes the guard: it contains a
// <...>.<mu>.Lock()/RLock() call, or its name ends in "Locked" (the
// caller-holds-the-lock convention).
func runGuardedFields(p *Package) []Diagnostic {
	guards := collectGuardedFields(p)
	if len(guards) == 0 {
		return nil
	}
	var out []Diagnostic
	for _, fn := range functionsOf(p) {
		if strings.HasSuffix(fn.name, "Locked") {
			continue
		}
		// Does this function take any guard? Record which mutex names it
		// locks (by final selector element).
		locked := make(map[string]bool)
		inspectShallow(fn.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, method, ok := lockCall(call); ok && (method == "Lock" || method == "RLock") {
				if i := strings.LastIndex(recv, "."); i >= 0 {
					locked[recv[i+1:]] = true
				} else {
					locked[recv] = true
				}
			}
			return true
		})
		inspectShallow(fn.body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selInfo, ok := p.Info.Selections[sel]
			if !ok || selInfo.Kind() != types.FieldVal {
				return true
			}
			v, ok := selInfo.Obj().(*types.Var)
			if !ok {
				return true
			}
			g, ok := guards[v]
			if !ok || locked[g.muName] {
				return true
			}
			out = append(out, diagAt(p, "locks", sel,
				"%s.%s is guarded by %s but this function never locks it; take %s.%s or move the access into a *Locked helper",
				g.structName, g.fieldName, g.muName, g.structName, g.muName))
			return true
		})
	}
	return out
}
