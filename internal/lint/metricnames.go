package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// metricnamesAnalyzer keeps the Prometheus exposition golden test honest:
// every metric family name handed to the metrics registry or the telemetry
// hub must be a compile-time literal matching ^[a-z0-9_.]+$. Runtime-built
// names (per-task, per-worker series) are legitimate but must be annotated,
// so each dynamic family is a deliberate, reviewed decision.
var metricnamesAnalyzer = &Analyzer{
	Name:    "metricnames",
	Doc:     "metric/histogram names must be ^[a-z0-9_.]+$ string literals",
	Exclude: []string{"metrics", "telemetry"}, // their own internals are generic
	Run:     runMetricNames,
}

var metricNameRE = regexp.MustCompile(`^[a-z0-9_.]+$`)

// namedCallTargets maps (type package suffix, type name) to the method
// names whose first argument is a metric family name.
var namedCallTargets = map[string]map[string]bool{
	"internal/metrics.Registry":    {"Counter": true, "Gauge": true, "Meter": true, "Time": true},
	"internal/telemetry.Telemetry": {"Histogram": true, "Window": true, "SetGaugeFunc": true},
}

func runMetricNames(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			method, pkgPath, typeName, ok := methodOnType(p, call)
			if !ok {
				return true
			}
			var methods map[string]bool
			for key, m := range namedCallTargets {
				dot := strings.LastIndex(key, ".")
				if strings.HasSuffix(pkgPath, key[:dot]) && typeName == key[dot+1:] {
					methods = m
					break
				}
			}
			if methods == nil || !methods[method] {
				return true
			}
			arg := call.Args[0]
			lit, isLit := arg.(*ast.BasicLit)
			if !isLit || lit.Kind != token.STRING {
				out = append(out, diagAt(p, "metricnames", arg,
					"%s.%s name is built at runtime; use a literal family plus labels, or annotate this deliberate dynamic series", typeName, method))
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil || !metricNameRE.MatchString(val) {
				d := diagAt(p, "metricnames", arg,
					"metric name %s must match ^[a-z0-9_.]+$ (lowercase, digits, underscore, dot)", lit.Value)
				d.Suggestion = strconv.Quote(sanitizeMetricName(val))
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

var metricBadChar = regexp.MustCompile(`[^a-z0-9_.]+`)

// sanitizeMetricName is the mechanical rewrite offered by -diff: lowercase
// and collapse every illegal run to a single underscore.
func sanitizeMetricName(s string) string {
	s = metricBadChar.ReplaceAllString(strings.ToLower(s), "_")
	s = strings.Trim(s, "_")
	if s == "" {
		return "unnamed"
	}
	return s
}
