package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// metricnamesAnalyzer keeps the Prometheus exposition golden test honest:
// every metric family name handed to the metrics registry or the telemetry
// hub must match ^[a-z0-9_.]+$ at compile time. The analyzer constant-folds
// what it can before judging:
//
//   - fully constant expressions (literals, const identifiers, concats of
//     them) are validated on their folded value;
//   - fmt.Sprintf calls with a constant format, and string concatenations
//     mixing constant and runtime parts, are validated on their skeleton —
//     every verb or runtime operand replaced by a placeholder digit — so a
//     family like "worker."+id+".frames" is provably clean without an
//     annotation, while Sprintf("Worker-%d", i) is provably dirty;
//   - names built by opaque calls stay unverifiable and must carry the
//     deliberate-dynamic annotation, so each one is a reviewed decision.
var metricnamesAnalyzer = &Analyzer{
	Name:    "metricnames",
	Doc:     "metric/histogram names must be ^[a-z0-9_.]+$ string literals",
	Exclude: []string{"metrics", "telemetry"}, // their own internals are generic
	Run:     runMetricNames,
}

var metricNameRE = regexp.MustCompile(`^[a-z0-9_.]+$`)

// namedCallTargets maps (type package suffix, type name) to the method
// names whose first argument is a metric family name.
var namedCallTargets = map[string]map[string]bool{
	"internal/metrics.Registry":    {"Counter": true, "Gauge": true, "Meter": true, "Time": true},
	"internal/telemetry.Telemetry": {"Histogram": true, "Window": true, "SetGaugeFunc": true},
}

func runMetricNames(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			method, pkgPath, typeName, ok := methodOnType(p, call)
			if !ok {
				return true
			}
			var methods map[string]bool
			for key, m := range namedCallTargets {
				dot := strings.LastIndex(key, ".")
				if strings.HasSuffix(pkgPath, key[:dot]) && typeName == key[dot+1:] {
					methods = m
					break
				}
			}
			if methods == nil || !methods[method] {
				return true
			}
			arg := call.Args[0]
			name, fold := foldMetricName(p, arg)
			switch fold {
			case foldExact:
				if !metricNameRE.MatchString(name) {
					d := diagAt(p, "metricnames", arg,
						"metric name %q must match ^[a-z0-9_.]+$ (lowercase, digits, underscore, dot)", name)
					d.Suggestion = strconv.Quote(sanitizeMetricName(name))
					out = append(out, d)
				}
			case foldSkeleton:
				if !metricNameRE.MatchString(name) {
					out = append(out, diagAt(p, "metricnames", arg,
						"dynamic metric name folds to %q, which cannot match ^[a-z0-9_.]+$ for any runtime value", name))
				}
			default:
				out = append(out, diagAt(p, "metricnames", arg,
					"%s.%s name is built at runtime; use a literal family plus labels, or annotate this deliberate dynamic series", typeName, method))
			}
			return true
		})
	}
	return out
}

// Folding outcomes for a metric-name expression.
const (
	foldUnknown = iota
	// foldExact: the expression is fully constant; name is its value.
	foldExact
	// foldSkeleton: constant shape with runtime holes; name has every hole
	// replaced by the placeholder digit "0" (legal in a metric name, so a
	// clean skeleton stays clean for every runtime value that is itself
	// clean — the hole contents remain the caller's responsibility, which
	// is the same contract Prometheus labels get).
	foldSkeleton
)

// foldMetricName constant-folds a metric-name expression as far as the type
// checker's constant info allows.
func foldMetricName(p *Package, e ast.Expr) (string, int) {
	e = ast.Unparen(e)
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), foldExact
	}
	switch x := e.(type) {
	case *ast.BinaryExpr:
		// A concat with at least one runtime operand (a fully constant one
		// was caught above): fold each side, defaulting holes to "0".
		l, lk := foldMetricName(p, x.X)
		r, rk := foldMetricName(p, x.Y)
		if lk == foldUnknown {
			l = "0"
		}
		if rk == foldUnknown {
			r = "0"
		}
		return l + r, foldSkeleton
	case *ast.CallExpr:
		if name, path, ok := pkgFuncObj(p, x.Fun); ok && path == "fmt" && name == "Sprintf" && len(x.Args) > 0 {
			if tv, ok := p.Info.Types[ast.Unparen(x.Args[0])]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				return sprintfSkeleton(constant.StringVal(tv.Value)), foldSkeleton
			}
		}
		// A conversion like string(op) is a single runtime hole.
		if isStringConversion(p, x) {
			return "0", foldSkeleton
		}
	}
	return "", foldUnknown
}

// isStringConversion reports whether call is a conversion to a string type.
func isStringConversion(p *Package, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	basic, isBasic := tv.Type.Underlying().(*types.Basic)
	return isBasic && basic.Kind() == types.String
}

// sprintfSkeleton replaces every format verb with the placeholder digit and
// unescapes %%, yielding the name's compile-time shape.
func sprintfSkeleton(format string) string {
	var b strings.Builder
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			b.WriteByte('%')
			continue
		}
		// Skip flags, width, precision and the verb itself.
		for i < len(format) {
			c := format[i]
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
				break
			}
			i++
		}
		b.WriteByte('0')
	}
	return b.String()
}

var metricBadChar = regexp.MustCompile(`[^a-z0-9_.]+`)

// sanitizeMetricName is the mechanical rewrite offered by -diff: lowercase
// and collapse every illegal run to a single underscore.
func sanitizeMetricName(s string) string {
	s = metricBadChar.ReplaceAllString(strings.ToLower(s), "_")
	s = strings.Trim(s, "_")
	if s == "" {
		return "unnamed"
	}
	return s
}
