package lint

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden diagnostic files")

// TestGoldenDiagnostics runs the full suite (strict mode) over each fixture
// package under testdata/src and pins the exact file:line:col:check output
// against testdata/golden/<fixture>.golden.
func TestGoldenDiagnostics(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no fixtures under testdata/src")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			p, err := loader.Load(filepath.Join("testdata/src", name))
			if err != nil {
				t.Fatal(err)
			}
			if p == nil {
				t.Fatal("fixture has no Go files")
			}
			// Fixtures must type-check fully: a broken fixture silently
			// downgrades analyzers to their syntactic fallbacks.
			for _, te := range p.TypeErrors {
				t.Errorf("fixture type error: %v", te)
			}
			diags, err := RunPackage(p, Config{Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(d.String())
				b.WriteString("\n")
			}
			got := b.String()
			goldenPath := filepath.Join("testdata/golden", name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/lint -run Golden -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestFixturesTripTheGate asserts the contract the Makefile gate relies on:
// reintroducing any fixture violation into a linted tree yields a non-empty
// diagnostic list (capslint exits non-zero on findings).
func TestFixturesTripTheGate(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"determ", "locks", "chans", "goroutines", "metricnames", "lockorder", "atomics", "frameproto", "overlap"} {
		p, err := loader.Load(filepath.Join("testdata/src", name))
		if err != nil {
			t.Fatal(err)
		}
		diags, err := RunPackage(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) == 0 {
			t.Errorf("fixture %s produced no findings; the gate would not trip", name)
		}
	}
}
