package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// exprString renders simple receiver expressions ("m.mu", "s.a.mu") for
// matching Lock/Unlock pairs. Anything beyond ident/selector/paren/star
// chains renders to "" and never matches.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	}
	return ""
}

// funcBody pairs a function-like node with its body. Nested function
// literals are separate entries: lock pairing and lifecycle rules apply per
// function, not per lexical file.
type funcBody struct {
	name string // "" for literals
	node ast.Node
	body *ast.BlockStmt
}

// functionsOf lists every function body in the package: declarations and
// function literals.
func functionsOf(p *Package) []funcBody {
	var out []funcBody
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, funcBody{name: fn.Name.Name, node: fn, body: fn.Body})
				}
			case *ast.FuncLit:
				out = append(out, funcBody{node: fn, body: fn.Body})
			}
			return true
		})
	}
	return out
}

// inspectShallow walks n but does not descend into nested function
// literals: statements inside a FuncLit belong to that function's own
// analysis scope.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// pkgFuncObj resolves a called selector or ident to a package-level
// function object and returns it with its package path. Methods resolve
// with ok=false.
func pkgFuncObj(p *Package, fun ast.Expr) (name, pkgPath string, ok bool) {
	var id *ast.Ident
	switch x := fun.(type) {
	case *ast.SelectorExpr:
		id = x.Sel
	case *ast.Ident:
		id = x
	default:
		return "", "", false
	}
	obj, _ := p.Info.Uses[id].(*types.Func)
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	if sig, _ := obj.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
		return "", "", false
	}
	return obj.Name(), obj.Pkg().Path(), true
}

// methodOnType resolves a call's method name and the defining named type's
// package path and type name ("internal/metrics", "Registry"). ok is false
// for non-methods or when type information is unavailable.
func methodOnType(p *Package, call *ast.CallExpr) (method, pkgPath, typeName string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	obj, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if obj == nil {
		return "", "", "", false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", "", false
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", "", false
	}
	return obj.Name(), named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// importedAs returns the local name binding an import path in file f
// ("" when not imported). The default name is the path's last element.
func importedAs(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// cancelChanRE matches channel names that conventionally signal shutdown.
var cancelChanRE = regexp.MustCompile(`(?i)(stop|abort|quit|done|cancel|exit|closed|kill)`)

// isCancelRecv reports whether e is a receive source that signals
// cancellation: ctx.Done()-style calls or stop/abort/quit channels.
func isCancelRecv(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			return cancelChanRE.MatchString(sel.Sel.Name)
		}
		if id, ok := x.Fun.(*ast.Ident); ok {
			return cancelChanRE.MatchString(id.Name)
		}
	case *ast.Ident:
		return cancelChanRE.MatchString(x.Name)
	case *ast.SelectorExpr:
		return cancelChanRE.MatchString(x.Sel.Name)
	case *ast.ParenExpr:
		return isCancelRecv(x.X)
	}
	return false
}

// commRecvExpr extracts the received-from channel expression of a select
// comm clause statement, or nil when the clause is not a receive.
func commRecvExpr(s ast.Stmt) ast.Expr {
	recvOf := func(e ast.Expr) ast.Expr {
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			return u.X
		}
		return nil
	}
	switch st := s.(type) {
	case *ast.ExprStmt:
		return recvOf(st.X)
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			return recvOf(st.Rhs[0])
		}
	}
	return nil
}

// selectHasEscape reports whether a select statement has a cancellation
// receive case or a default case — either keeps the blocking comm from
// hanging forever.
func selectHasEscape(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default:
		}
		if ch := commRecvExpr(cc.Comm); ch != nil && isCancelRecv(ch) {
			return true
		}
	}
	return false
}
