package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroutinesAnalyzer covers goroutine lifecycle hygiene in the runtime
// packages: a `go func` literal must be tied off — a WaitGroup Done, a
// stop/ctx channel it watches, or ownership of a channel it closes — and
// must not capture loop variables it should receive as arguments.
var goroutinesAnalyzer = &Analyzer{
	Name:     "goroutines",
	Doc:      "go func literals that capture loop variables or lack a WaitGroup/stop-channel tie-off",
	Packages: []string{"engine", "controller"},
	Run:      runGoroutines,
}

func runGoroutines(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		// Track loop variables in scope at each go statement by walking
		// with an explicit stack.
		var loopVars []map[types.Object]string
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			switch x := n.(type) {
			case nil:
				return
			case *ast.RangeStmt:
				vars := make(map[types.Object]string)
				if x.Tok == token.DEFINE {
					for _, e := range []ast.Expr{x.Key, x.Value} {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := p.Info.Defs[id]; obj != nil {
								vars[obj] = id.Name
							}
						}
					}
				}
				loopVars = append(loopVars, vars)
				walkChildren(x, walk)
				loopVars = loopVars[:len(loopVars)-1]
				return
			case *ast.ForStmt:
				vars := make(map[types.Object]string)
				if init, ok := x.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
					for _, e := range init.Lhs {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := p.Info.Defs[id]; obj != nil {
								vars[obj] = id.Name
							}
						}
					}
				}
				loopVars = append(loopVars, vars)
				walkChildren(x, walk)
				loopVars = loopVars[:len(loopVars)-1]
				return
			case *ast.GoStmt:
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					out = append(out, checkGoLiteral(p, x, lit, loopVars)...)
				}
			}
			walkChildren(n, walk)
		}
		walk(f)
	}
	return out
}

func walkChildren(n ast.Node, walk func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == n {
			return true
		}
		if m != nil {
			walk(m)
		}
		return false
	})
}

func checkGoLiteral(p *Package, g *ast.GoStmt, lit *ast.FuncLit, loopVars []map[types.Object]string) []Diagnostic {
	var out []Diagnostic
	// Loop-variable capture: the literal's body references a variable
	// defined by an enclosing loop. Per-iteration semantics (go >= 1.22)
	// make this safe in today's toolchain, but the engine convention is to
	// pass the value explicitly — it survives vendoring into older modules
	// and makes the data flow visible.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		for _, vars := range loopVars {
			if name, captured := vars[obj]; captured {
				out = append(out, diagAt(p, "goroutines", id,
					"goroutine literal captures loop variable %s; pass it as an argument (go func(%s ...) { ... }(%s))",
					name, name, name))
			}
		}
		return true
	})
	// Lifecycle tie-off: the goroutine must be joinable or stoppable.
	tied := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if method, pkgPath, typeName, ok := methodOnType(p, x); ok &&
				method == "Done" && pkgPath == "sync" && typeName == "WaitGroup" {
				tied = true
				return false
			}
			// close(ch) in a defer marks an ownership hand-off the reader
			// side joins on.
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" {
				tied = true
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && isCancelRecv(x.X) {
				tied = true
				return false
			}
		case *ast.SelectStmt:
			if selectHasEscape(x) {
				tied = true
				return false
			}
		case *ast.RangeStmt:
			// `for msg := range ch` exits when the channel closes: the
			// sender owns the lifecycle.
			if t := p.Info.TypeOf(x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					tied = true
					return false
				}
			}
		}
		return true
	})
	if !tied {
		tied = connReaderLoop(p, lit)
	}
	if !tied {
		out = append(out, diagAt(p, "goroutines", g,
			"goroutine literal has no lifecycle tie-off: add a WaitGroup Done, watch a stop/ctx channel, or range over a closable channel"))
	}
	return out
}

// connReaderLoop recognizes the goroutine-per-connection idiom the network
// data plane is built from: a loop that blocks in Accept/Read on a
// connection-like value (anything with an Accept or Read method, or passed
// to a function that takes a reader) and returns on error. Such a
// goroutine IS tied off — its lifecycle is the connection's: closing the
// conn or listener fails the blocking call and the loop exits.
func connReaderLoop(p *Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		var body *ast.BlockStmt
		switch x := n.(type) {
		case *ast.ForStmt:
			body = x.Body
		case *ast.RangeStmt:
			body = x.Body
		default:
			return true
		}
		hasRead, hasReturn := false, false
		ast.Inspect(body, func(m ast.Node) bool {
			switch y := m.(type) {
			case *ast.ReturnStmt:
				hasReturn = true
			case *ast.CallExpr:
				if isConnRead(p, y) {
					hasRead = true
				}
			}
			return true
		})
		if hasRead && hasReturn {
			found = true
			return false
		}
		return true
	})
	return found
}

// isConnRead reports whether a call blocks reading from a connection-like
// value: a method named Accept/Read/ReadFrame on a value with that method,
// or a package function whose argument is itself such a value (the frame
// codec's ReadFrame(conn) shape).
func isConnRead(p *Package, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Accept", "Read", "ReadFrame":
			if t := p.Info.TypeOf(sel.X); t != nil && hasAnyMethod(t, "Accept", "Read") {
				return true
			}
		}
	}
	// Function form: ReadFrame(c), bufio readers, etc. — an argument that
	// itself has a Read method counts as the blocking handle.
	if id := calleeName(call); id == "ReadFrame" || id == "ReadFull" {
		for _, arg := range call.Args {
			if t := p.Info.TypeOf(arg); t != nil && hasAnyMethod(t, "Read") {
				return true
			}
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// hasAnyMethod reports whether t (or *t) has a method with one of the
// given names.
func hasAnyMethod(t types.Type, names ...string) bool {
	check := func(ms *types.MethodSet) bool {
		for i := 0; i < ms.Len(); i++ {
			for _, name := range names {
				if ms.At(i).Obj().Name() == name {
					return true
				}
			}
		}
		return false
	}
	if check(types.NewMethodSet(t)) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return check(types.NewMethodSet(types.NewPointer(t)))
	}
	return false
}
