package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and (best-effort) type-checked package.
type Package struct {
	// Name is the package clause name (e.g. "caps"); analyzer applicability
	// keys on it so fixture packages under testdata can opt into a check by
	// declaring the matching name.
	Name string
	// Dir is the package directory, relative to the loader root when
	// possible (stable diagnostic paths).
	Dir string
	// Fset is the shared file set for position lookup.
	Fset *token.FileSet
	// Files are the parsed non-test source files, in file-name order.
	Files []*ast.File
	// Info holds whatever type information the checker could compute.
	// Analyzers must tolerate missing entries: a package that fails to
	// fully type-check is still linted syntactically.
	Info *types.Info
	// TypeErrors collects type-checking problems (not lint findings).
	TypeErrors []error
}

// Loader parses and type-checks packages using only the standard library.
// Imports inside the enclosing module are resolved recursively from source;
// standard-library imports go through go/importer's source importer (which
// resolves them from GOROOT without shelling out). Anything else fails
// softly: the package is still linted with partial type information.
//
// Every module-internal package is parsed and type-checked exactly once,
// whether it is reached as an analysis target or as an import of one. The
// resulting object identities (*types.Func, *types.Var) are therefore
// consistent program-wide, which is what lets the call graph and the
// whole-program analyzers connect a call site in one package to a function
// body in another.
type Loader struct {
	fset       *token.FileSet
	root       string // module root directory (absolute)
	modulePath string
	std        types.Importer
	cache      map[string]*types.Package
	pkgs       map[string]*Package // lint view keyed by import path
	loading    map[string]bool
}

// NewLoader creates a loader for the module rooted at dir (the directory
// holding go.mod). Pass "" to locate the module root upward from the
// working directory.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		root:       root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*types.Package),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Root returns the loader's module root directory.
func (l *Loader) Root() string { return l.root }

func findModule(dir string) (root, modPath string, err error) {
	if dir == "" {
		dir, err = os.Getwd()
		if err != nil {
			return "", "", err
		}
	}
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
	}
}

// Import implements types.Importer over module-internal paths, delegating
// everything else to the standard-library source importer. Module-internal
// packages go through the same checked-once path as analysis targets, so an
// imported package and a linted package share one set of type objects.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	rel, ok := strings.CutPrefix(path, l.modulePath+"/")
	if !ok && path != l.modulePath {
		return l.std.Import(path)
	}
	if path == l.modulePath {
		rel = "."
	}
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	p, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg := l.cache[path]
	if pkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s produced no package", path)
	}
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory, sorted by name.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Load parses and type-checks the package in dir. Type errors are recorded
// on the package, not fatal: analyzers degrade to syntactic checks where
// type information is missing. Loading the same directory twice (or a
// directory already pulled in as an import) returns the cached package.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadDir(abs, l.importPath(abs))
}

// loadDir parses and checks one directory under its import path, caching
// both the lint view and the types.Package. Returns (nil, nil) when the
// directory holds no non-test Go files.
func (l *Loader) loadDir(abs, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	files, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	p := &Package{
		Name:  files[0].Name.Name,
		Dir:   l.relDir(abs),
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// The returned error repeats the first recorded one; partial Info is
	// still usable, which is the whole point.
	tpkg, _ := conf.Check(path, l.fset, files, p.Info)
	if tpkg != nil {
		l.cache[path] = tpkg
	}
	l.pkgs[path] = p
	return p, nil
}

func (l *Loader) relDir(abs string) string {
	if rel, err := filepath.Rel(l.root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

func (l *Loader) importPath(abs string) string {
	rel := l.relDir(abs)
	if rel == "." {
		return l.modulePath
	}
	if filepath.IsAbs(rel) {
		return rel // outside the module: lint standalone under its own path
	}
	return l.modulePath + "/" + rel
}

// Expand resolves package patterns to package directories. Supported forms:
// a directory path, or a path ending in "/..." which walks recursively.
// Directories named testdata or vendor, hidden directories, and directories
// without non-test Go files are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		base = strings.TrimSuffix(base, "/")
		if base == "" || base == "." {
			base = "."
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
