package lint

import (
	"go/ast"
)

// chansAnalyzer guards the engine's backpressure story: every channel in
// the engine is bounded (that is what makes backpressure real), so a bare
// send can block forever once a downstream task has died. Sends must sit in
// a select with a stop/ctx case (or a default case for best-effort sends).
var chansAnalyzer = &Analyzer{
	Name:     "chans",
	Doc:      "sends on bounded channels outside a select with a stop/ctx case",
	Packages: []string{"engine"},
	Run:      runChans,
}

func runChans(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		// First pass: classify sends that are select comm clauses.
		okSends := make(map[*ast.SendStmt]bool)
		badSelect := make(map[*ast.SendStmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			escape := selectHasEscape(sel)
			for _, c := range sel.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					if escape {
						okSends[send] = true
					} else {
						badSelect[send] = true
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			switch {
			case okSends[send]:
			case badSelect[send]:
				out = append(out, diagAt(p, "chans", send,
					"send on %s sits in a select with no stop/ctx or default case; a dead receiver deadlocks the sender",
					sendTarget(send)))
			default:
				d := diagAt(p, "chans", send,
					"bare send on bounded channel %s can block forever under backpressure; wrap it in a select with a stop/ctx case",
					sendTarget(send))
				d.Suggestion = "select { case " + sendTarget(send) + " <- ...: case <-stop: return }"
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

func sendTarget(send *ast.SendStmt) string {
	if s := exprString(send.Chan); s != "" {
		return s
	}
	return "channel"
}
