package lint

import (
	"go/ast"
)

// chansAnalyzer guards the engine's backpressure story: every channel in
// the engine is bounded (that is what makes backpressure real), so a bare
// send can block forever once a downstream task has died. Sends must sit in
// a select with a stop/ctx case (or a default case for best-effort sends).
//
// One shape is non-blocking by construction and exempt: the sized fan-in,
// where a channel is made with capacity len(xs), one goroutine is launched
// per element of xs, and each goroutine performs at most one send (the
// engine's batch-flush error collection uses it — every flush goroutine
// reports at most once into a channel sized to the fan-out). The analyzer
// recognizes that shape structurally instead of requiring a suppression.
var chansAnalyzer = &Analyzer{
	Name:     "chans",
	Doc:      "sends on bounded channels outside a select with a stop/ctx case",
	Packages: []string{"engine"},
	Run:      runChans,
}

func runChans(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		// First pass: classify sends that are select comm clauses.
		okSends := sizedFanInSends(f)
		badSelect := make(map[*ast.SendStmt]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			escape := selectHasEscape(sel)
			for _, c := range sel.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					if escape {
						okSends[send] = true
					} else {
						badSelect[send] = true
					}
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			switch {
			case okSends[send]:
			case badSelect[send]:
				out = append(out, diagAt(p, "chans", send,
					"send on %s sits in a select with no stop/ctx or default case; a dead receiver deadlocks the sender",
					sendTarget(send)))
			default:
				d := diagAt(p, "chans", send,
					"bare send on bounded channel %s can block forever under backpressure; wrap it in a select with a stop/ctx case",
					sendTarget(send))
				d.Suggestion = "select { case " + sendTarget(send) + " <- ...: case <-stop: return }"
				out = append(out, d)
			}
			return true
		})
	}
	return out
}

func sendTarget(send *ast.SendStmt) string {
	if s := exprString(send.Chan); s != "" {
		return s
	}
	return "channel"
}

// sizedFanInSends finds bare sends that cannot block by construction: the
// channel was made in the same function with `make(chan T, len(xs))`, the
// send sits in a `go func` literal launched from a `range xs` loop, and no
// loop lies between the goroutine body and the send (so each goroutine
// sends at most once, and the capacity bounds the total).
func sizedFanInSends(f *ast.File) map[*ast.SendStmt]bool {
	allowed := make(map[*ast.SendStmt]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		fn, ok := n.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			return true
		}
		// Channels created in this function with a len-derived capacity:
		// channel name -> rendered collection expression.
		sized := make(map[string]string)
		inspectShallow(fn.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if coll := lenMakeChanArg(as.Rhs[0]); coll != "" {
				sized[id.Name] = coll
			}
			return true
		})
		if len(sized) == 0 {
			return true
		}
		ast.Inspect(fn.Body, func(m ast.Node) bool {
			rs, ok := m.(*ast.RangeStmt)
			if !ok {
				return true
			}
			coll := exprString(rs.X)
			if coll == "" {
				return true
			}
			ast.Inspect(rs.Body, func(gn ast.Node) bool {
				g, ok := gn.(*ast.GoStmt)
				if !ok {
					return true
				}
				fl, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				for _, send := range unloopedSends(fl.Body) {
					if name := exprString(send.Chan); sized[name] == coll {
						allowed[send] = true
					}
				}
				return true
			})
			return true
		})
		return true
	})
	return allowed
}

// lenMakeChanArg matches `make(chan T, len(xs))` and returns the rendered
// xs, or "" when e is any other expression.
func lenMakeChanArg(e ast.Expr) string {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return ""
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "make" {
		return ""
	}
	if _, ok := call.Args[0].(*ast.ChanType); !ok {
		return ""
	}
	lenCall, ok := call.Args[1].(*ast.CallExpr)
	if !ok || len(lenCall.Args) != 1 {
		return ""
	}
	if id, ok := lenCall.Fun.(*ast.Ident); !ok || id.Name != "len" {
		return ""
	}
	return exprString(lenCall.Args[0])
}

// unloopedSends lists the sends in a goroutine body that execute at most
// once per goroutine: not nested inside a for/range loop or a further
// function literal.
func unloopedSends(body *ast.BlockStmt) []*ast.SendStmt {
	var out []*ast.SendStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case *ast.SendStmt:
			out = append(out, x)
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}
