package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func loadFixture(t *testing.T, name string) (*Loader, *Package) {
	t.Helper()
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	p, err := loader.Load(filepath.Join("testdata/src", name))
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatalf("fixture %s has no Go files", name)
	}
	return loader, p
}

func checksOf(diags []Diagnostic) map[string]int {
	out := make(map[string]int)
	for _, d := range diags {
		out[d.Check]++
	}
	return out
}

func TestConfigUnknownCheckRejected(t *testing.T) {
	_, p := loadFixture(t, "determ")
	if _, err := RunPackage(p, Config{Enable: []string{"nosuch"}}); err == nil {
		t.Error("Enable with unknown check: want error, got nil")
	}
	if _, err := RunPackage(p, Config{Disable: []string{"nosuch"}}); err == nil {
		t.Error("Disable with unknown check: want error, got nil")
	}
}

func TestConfigEnableDisable(t *testing.T) {
	_, p := loadFixture(t, "determ")
	all, err := RunPackage(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if n := checksOf(all)["determinism"]; n == 0 {
		t.Fatal("fixture yields no determinism findings")
	}
	only, err := RunPackage(p, Config{Enable: []string{"locks"}})
	if err != nil {
		t.Fatal(err)
	}
	if n := checksOf(only)["determinism"]; n != 0 {
		t.Errorf("Enable=[locks] still reported %d determinism findings", n)
	}
	disabled, err := RunPackage(p, Config{Disable: []string{"determinism"}})
	if err != nil {
		t.Fatal(err)
	}
	if n := checksOf(disabled)["determinism"]; n != 0 {
		t.Errorf("Disable=[determinism] still reported %d determinism findings", n)
	}
}

// TestStaleOnlyWhenCheckRan pins the interaction between -strict and
// -checks: an allow whose check was disabled for this run is not stale — it
// may suppress findings of a differently-scoped run.
func TestStaleOnlyWhenCheckRan(t *testing.T) {
	_, p := loadFixture(t, "suppress")
	strict, err := RunPackage(p, Config{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	stale := 0
	for _, d := range strict {
		if d.Check == SuppressCheck && strings.Contains(d.Message, "stale") {
			stale++
		}
	}
	if stale != 1 {
		t.Errorf("strict full run: want exactly 1 stale suppression, got %d", stale)
	}
	scoped, err := RunPackage(p, Config{Strict: true, Enable: []string{"locks"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range scoped {
		if strings.Contains(d.Message, "stale") {
			t.Errorf("determinism did not run, yet its allow is reported stale: %v", d)
		}
	}
}

// TestOverlapSuppressionScoping pins per-check suppression on one line: the
// overlap fixture trips determinism and metricnames on the same statement
// and carries an allow naming only determinism. The metricnames finding
// must survive, and the allow must not be stale.
func TestOverlapSuppressionScoping(t *testing.T) {
	_, p := loadFixture(t, "overlap")
	diags, err := RunPackage(p, Config{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	counts := checksOf(diags)
	if counts["determinism"] != 0 {
		t.Errorf("determinism finding not suppressed: %v", diags)
	}
	if counts["metricnames"] != 1 {
		t.Errorf("want exactly 1 surviving metricnames finding, got %d: %v", counts["metricnames"], diags)
	}
	if counts[SuppressCheck] != 0 {
		t.Errorf("allow reported as stale or malformed: %v", diags)
	}
}

// TestStaleScopingWithProgramChecks extends the stale-scoping contract to
// the whole-program era: a -checks subset that omits an allow's check never
// reports it stale, whether the subset runs per-package or whole-program
// analyzers.
func TestStaleScopingWithProgramChecks(t *testing.T) {
	_, p := loadFixture(t, "overlap")
	// metricnames runs, determinism does not: the determinism allow is
	// unused but must not be stale, and the metricnames finding survives.
	scoped, err := RunPackage(p, Config{Strict: true, Enable: []string{"metricnames"}})
	if err != nil {
		t.Fatal(err)
	}
	counts := checksOf(scoped)
	if counts[SuppressCheck] != 0 {
		t.Errorf("determinism did not run, yet its allow is flagged: %v", scoped)
	}
	if counts["metricnames"] != 1 {
		t.Errorf("want 1 metricnames finding under -checks metricnames, got %d", counts["metricnames"])
	}
	// Only a whole-program analyzer runs: no findings, and still no stale
	// report for the determinism allow.
	progOnly, err := RunPackage(p, Config{Strict: true, Enable: []string{"lockorder"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(progOnly) != 0 {
		t.Errorf("want no findings under -checks lockorder, got %v", progOnly)
	}
	// The full run uses the allow (determinism fires and is suppressed), so
	// strict must not flag it either.
	full, err := RunPackage(p, Config{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range full {
		if d.Check == SuppressCheck {
			t.Errorf("full strict run flags the used allow: %v", d)
		}
	}
}

// TestStrictOffHidesStale mirrors the default CLI mode.
func TestStrictOffHidesStale(t *testing.T) {
	_, p := loadFixture(t, "suppress")
	diags, err := RunPackage(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "stale") {
			t.Errorf("stale suppression reported without Strict: %v", d)
		}
	}
	// The hygiene findings (no reason, unknown check, no check) are NOT
	// strict-gated: they are real findings in every mode.
	if n := checksOf(diags)[SuppressCheck]; n != 3 {
		t.Errorf("want 3 suppression hygiene findings in default mode, got %d", n)
	}
}

func TestDiagnosticJSONShape(t *testing.T) {
	d := Diagnostic{Check: "chans", File: "a/b.go", Line: 3, Col: 7, Message: "m", Suggestion: "s"}
	buf, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"check"`, `"file"`, `"line"`, `"col"`, `"message"`, `"suggestion"`} {
		if !strings.Contains(string(buf), key) {
			t.Errorf("JSON missing %s: %s", key, buf)
		}
	}
	var back Diagnostic
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip mismatch: %+v != %+v", back, d)
	}
}

func TestExpandSkipsTestdata(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand walked into %s", d)
		}
		if filepath.ToSlash(d) == "." {
			found = true
		}
	}
	if !found {
		t.Error("Expand of ./... from internal/lint did not include the package itself")
	}
}

func TestRunAggregatesAndSorts(t *testing.T) {
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, name := range []string{"locks", "chans"} {
		p, err := loader.Load(filepath.Join("testdata/src", name))
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	diags, err := Run(pkgs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("no findings across fixtures")
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %v before %v", a, b)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"Worker-CPU%":   "worker_cpu",
		"latency.sink":  "latency.sink",
		"__a__":         "a",
		"":              "unnamed",
		"A B\tC":        "a_b_c",
		"records_total": "records_total",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestAnalyzerApplicability pins the package-name scoping: determinism must
// skip non-deterministic packages entirely.
func TestAnalyzerApplicability(t *testing.T) {
	if determinismAnalyzer.appliesTo("engine") {
		t.Error("determinism applies to engine; it must not")
	}
	if !determinismAnalyzer.appliesTo("caps") {
		t.Error("determinism does not apply to caps")
	}
	if chansAnalyzer.appliesTo("caps") {
		t.Error("chans applies to caps; it must not")
	}
	if metricnamesAnalyzer.appliesTo("telemetry") {
		t.Error("metricnames applies to telemetry's own internals; it must not")
	}
}
