package lint

import (
	"testing"
	"time"

	"capsys/internal/clock"
)

// TestRunStatsWithStepClock pins the timing plumbing deterministically: a
// Step clock makes every analyzer appear to cost exactly one step, and the
// total covers at least the per-check sum.
func TestRunStatsWithStepClock(t *testing.T) {
	_, p := loadFixture(t, "determ")
	step := time.Millisecond
	clk := clock.Step(time.Unix(0, 0), step)
	_, stats, err := RunTimed([]*Package{p}, Config{}, clk)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PerCheck) != len(Analyzers()) {
		t.Fatalf("PerCheck has %d entries, want one per analyzer (%d)", len(stats.PerCheck), len(Analyzers()))
	}
	var sum time.Duration
	for _, a := range Analyzers() {
		d, ok := stats.PerCheck[a.Name]
		if !ok {
			t.Errorf("no timing entry for %s", a.Name)
			continue
		}
		if d != step {
			t.Errorf("PerCheck[%s] = %v, want exactly one clock step (%v)", a.Name, d, step)
		}
		sum += d
	}
	if stats.Total < sum {
		t.Errorf("Total %v is less than the per-check sum %v", stats.Total, sum)
	}
}

// selfRuntimeBudget bounds a full-tree capslint analysis pass. The suite is
// part of `make verify`, so its own latency is a correctness property: a
// whole-program analyzer that goes quadratic on the real tree should fail
// here, not slow every build. Loading/type-checking is measured separately
// from analysis so a regression report points at the right half.
const selfRuntimeBudget = 30 * time.Second

// TestSelfRuntimeBudgetFullTree loads the whole module and runs the full
// strict suite, asserting the analysis stays inside the budget and — the
// gate `make lint` relies on — reports zero unsuppressed findings.
func TestSelfRuntimeBudgetFullTree(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree load is not a -short test")
	}
	loader, err := NewLoader("")
	if err != nil {
		t.Fatal(err)
	}
	loadStart := time.Now()
	dirs, err := loader.Expand([]string{loader.Root() + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := loader.Load(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	loadTime := time.Since(loadStart)
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages loaded from the module root; expansion is broken", len(pkgs))
	}
	diags, stats, err := RunTimed(pkgs, Config{Strict: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unsuppressed finding on the tree: %v", d)
	}
	if stats.Total > selfRuntimeBudget {
		t.Errorf("full-tree analysis took %v (load/type-check: %v), over the %v budget; per-check: %v",
			stats.Total, loadTime, selfRuntimeBudget, stats.PerCheck)
	}
	t.Logf("full tree: %d packages, load %v, analysis %v, per-check %v",
		len(pkgs), loadTime, stats.Total, stats.PerCheck)
}
