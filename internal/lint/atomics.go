package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atomicsAnalyzer enforces the all-or-nothing access discipline around
// sync/atomic: once any code path touches a field through an atomic
// operation, every access must — one plain read or write reintroduces
// exactly the race the atomic was bought to prevent. This is the static
// guard for the MeterShard single-writer/atomic-publish contract (PR 8):
//
//   - a field (or package variable) whose address is passed to a
//     sync/atomic function anywhere in the program must never be read,
//     written, or have its address escape outside atomic calls;
//   - a struct containing atomic state (an atomic.* typed field, an array
//     of them, or an atomic-function-accessed field) must never be copied
//     by value: assignments from a dereference or selector, by-value
//     range iteration, and by-value argument passing all duplicate the
//     atomic cell, silently forking the counter readers are polling.
//
// The analyzer is whole-program: the atomic access that poisons a field
// may live in a different package than the plain access that breaks it.
var atomicsAnalyzer = &Analyzer{
	Name:       "atomics",
	Doc:        "plain reads/writes/copies of fields accessed through sync/atomic",
	RunProgram: runAtomics,
}

// atomicSite is one sync/atomic access of a variable, with the package the
// access appears in (needed to render its path in cross-references).
type atomicSite struct {
	pkg  *Package
	node ast.Node
}

type atomicsState struct {
	prog *Program
	// fnAccessed maps variables to their sync/atomic access sites.
	fnAccessed map[*types.Var][]atomicSite
	// atomicArgNodes marks the operand nodes inside `&x` arguments of
	// atomic calls — the sanctioned uses.
	atomicArgNodes map[ast.Node]bool
	// fieldOwner maps a struct field to its declaring named type.
	fieldOwner map[*types.Var]*types.Named
	// atomicStructs are named structs containing atomic state.
	atomicStructs map[*types.Named]bool
}

func runAtomics(prog *Program) []Diagnostic {
	st := &atomicsState{
		prog:           prog,
		fnAccessed:     make(map[*types.Var][]atomicSite),
		atomicArgNodes: make(map[ast.Node]bool),
		fieldOwner:     make(map[*types.Var]*types.Named),
		atomicStructs:  make(map[*types.Named]bool),
	}
	st.collect()
	var out []Diagnostic
	out = append(out, st.flagPlainAccess()...)
	out = append(out, st.flagCopies()...)
	return out
}

// collect records atomic-function access sites, struct field ownership, and
// the set of atomic-bearing structs.
func (st *atomicsState) collect() {
	for _, p := range st.prog.Packages {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					st.collectAtomicCall(p, x)
				case *ast.TypeSpec:
					st.collectStruct(p, x)
				}
				return true
			})
		}
	}
	for v := range st.fnAccessed {
		if owner := st.fieldOwner[v]; owner != nil {
			st.atomicStructs[owner] = true
		}
	}
}

func (st *atomicsState) collectAtomicCall(p *Package, call *ast.CallExpr) {
	_, path, ok := pkgFuncObj(p, call.Fun)
	if !ok || path != "sync/atomic" || len(call.Args) == 0 {
		return
	}
	un, isAddr := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !isAddr || un.Op != token.AND {
		return
	}
	target := ast.Unparen(un.X)
	if v := varOf(p, target); v != nil {
		st.fnAccessed[v] = append(st.fnAccessed[v], atomicSite{pkg: p, node: call})
		st.atomicArgNodes[target] = true
	}
}

func (st *atomicsState) collectStruct(p *Package, ts *ast.TypeSpec) {
	strct, isStruct := ts.Type.(*ast.StructType)
	if !isStruct {
		return
	}
	tn, _ := p.Info.Defs[ts.Name].(*types.TypeName)
	if tn == nil {
		return
	}
	named, _ := tn.Type().(*types.Named)
	if named == nil {
		return
	}
	for _, field := range strct.Fields.List {
		for _, nameIdent := range field.Names {
			v, _ := p.Info.Defs[nameIdent].(*types.Var)
			if v == nil {
				continue
			}
			st.fieldOwner[v] = named
			if isAtomicValueType(v.Type()) {
				st.atomicStructs[named] = true
			}
		}
	}
}

// varOf resolves a selector or identifier to its variable object.
func varOf(p *Package, e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		v, _ := p.Info.Uses[x.Sel].(*types.Var)
		return v
	case *ast.Ident:
		v, _ := p.Info.Uses[x].(*types.Var)
		return v
	}
	return nil
}

// isAtomicValueType reports whether t is a sync/atomic value type or an
// array of them.
func isAtomicValueType(t types.Type) bool {
	if arr, isArr := t.Underlying().(*types.Array); isArr {
		return isAtomicValueType(arr.Elem())
	}
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// flagPlainAccess reports every use of an atomic-function-accessed variable
// that is not itself inside an atomic call argument.
func (st *atomicsState) flagPlainAccess() []Diagnostic {
	var out []Diagnostic
	for _, p := range st.prog.Packages {
		for _, f := range p.Files {
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				stack = append(stack, n)
				var v *types.Var
				switch x := n.(type) {
				case *ast.SelectorExpr:
					v = varOf(p, x)
				case *ast.Ident:
					// Bare identifier uses (package-level vars); field
					// selections are handled by the SelectorExpr case —
					// skip the Sel ident itself to avoid double reports.
					if len(stack) >= 2 {
						if sel, isSel := stack[len(stack)-2].(*ast.SelectorExpr); isSel && sel.Sel == x {
							return true
						}
					}
					if obj, isUse := p.Info.Uses[x]; isUse {
						v, _ = obj.(*types.Var)
					}
				default:
					return true
				}
				if v == nil {
					return true
				}
				sites, tracked := st.fnAccessed[v]
				if !tracked || st.atomicArgNodes[n] {
					return true
				}
				if inCompositeLitKey(stack) {
					return true
				}
				kind := "read"
				if isWriteContext(stack) {
					kind = "write"
				}
				out = append(out, diagAt(p, "atomics", n,
					"plain %s of %s, which is accessed with sync/atomic (e.g. %s); every access must use atomic operations",
					kind, v.Name(), earliestSite(sites)))
				return true
			})
		}
	}
	return out
}

// earliestSite renders the first atomic access site of a variable, for the
// cross-reference in the diagnostic.
func earliestSite(sites []atomicSite) string {
	sort.Slice(sites, func(i, j int) bool { return sites[i].node.Pos() < sites[j].node.Pos() })
	file, line, _ := posOf(sites[0].pkg, sites[0].node.Pos())
	return fmt.Sprintf("%s:%d", file, line)
}

// inCompositeLitKey reports whether the node on top of the stack is the key
// of a keyed composite-literal entry — initialization before publication,
// which is safe.
func inCompositeLitKey(stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	kv, isKV := stack[len(stack)-2].(*ast.KeyValueExpr)
	if !isKV || kv.Key != stack[len(stack)-1] {
		return false
	}
	_, isLit := stack[len(stack)-3].(*ast.CompositeLit)
	return isLit
}

// isWriteContext reports whether the accessed node is the target of an
// assignment or inc/dec statement.
func isWriteContext(stack []ast.Node) bool {
	n := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if containsNode(lhs, n) {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return containsNode(parent.X, n)
		case *ast.SelectorExpr, *ast.ParenExpr, *ast.IndexExpr:
			n = stack[i].(ast.Node)
			continue
		default:
			return false
		}
	}
	return false
}

func containsNode(root ast.Expr, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(m ast.Node) bool {
		if m == target {
			found = true
			return false
		}
		return !found
	})
	return found
}

// flagCopies reports by-value copies of structs carrying atomic state.
func (st *atomicsState) flagCopies() []Diagnostic {
	var out []Diagnostic
	if len(st.atomicStructs) == 0 {
		return out
	}
	for _, p := range st.prog.Packages {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.RangeStmt:
					if x.Value == nil {
						return true
					}
					if elem := rangeElemType(p, x.X); elem != nil {
						if named := st.atomicStruct(elem); named != nil {
							out = append(out, diagAt(p, "atomics", x.Value,
								"ranging by value copies %s, which contains atomic state; iterate by index or over pointers",
								named.Obj().Name()))
						}
					}
				case *ast.AssignStmt:
					for _, rhs := range x.Rhs {
						if named := st.copiedAtomicStruct(p, rhs); named != nil {
							out = append(out, diagAt(p, "atomics", rhs,
								"assignment copies %s by value, which contains atomic state; keep a pointer instead",
								named.Obj().Name()))
						}
					}
				case *ast.CallExpr:
					for _, arg := range x.Args {
						if named := st.copiedAtomicStruct(p, arg); named != nil {
							out = append(out, diagAt(p, "atomics", arg,
								"passing %s by value copies its atomic state; pass a pointer instead",
								named.Obj().Name()))
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// atomicStruct returns the named atomic-bearing struct behind t (not behind
// a pointer — pointer copies are fine), or nil.
func (st *atomicsState) atomicStruct(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return nil
	}
	named, _ := t.(*types.Named)
	if named != nil && st.atomicStructs[named] {
		return named
	}
	return nil
}

// copiedAtomicStruct reports whether evaluating e copies a live
// atomic-bearing struct: a dereference, selector, index or identifier of
// struct type. Fresh values (composite literals, call results, conversions)
// are not copies of shared state.
func (st *atomicsState) copiedAtomicStruct(p *Package, e ast.Expr) *types.Named {
	switch ast.Unparen(e).(type) {
	case *ast.StarExpr, *ast.SelectorExpr, *ast.Ident, *ast.IndexExpr:
	default:
		return nil
	}
	return st.atomicStruct(p.Info.TypeOf(e))
}

// rangeElemType returns the per-iteration value type of ranging over e.
func rangeElemType(p *Package, e ast.Expr) types.Type {
	t := p.Info.TypeOf(e)
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Pointer: // *[N]T
		if arr, isArr := u.Elem().Underlying().(*types.Array); isArr {
			return arr.Elem()
		}
	case *types.Map:
		return u.Elem()
	case *types.Chan:
		return u.Elem()
	}
	return nil
}
