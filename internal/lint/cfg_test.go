package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses src as a file, finds the function named fn and builds
// its CFG.
func buildTestCFG(t *testing.T, src, fn string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatalf("no function %s in test source", fn)
	return nil
}

// reachable returns the set of blocks reachable from the entry.
func reachable(c *CFG) map[*CFGBlock]bool {
	seen := map[*CFGBlock]bool{c.Entry: true}
	queue := []*CFGBlock{c.Entry}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return seen
}

// TestCFGStraightLine: no control flow means every statement sits on the
// path from entry to exit.
func TestCFGStraightLine(t *testing.T) {
	c := buildTestCFG(t, `package p
func f() {
	a := 1
	a++
	_ = a
}`, "f")
	if !reachable(c)[c.Exit] {
		t.Fatal("exit unreachable")
	}
	n := 0
	for _, b := range c.Blocks {
		n += len(b.Nodes)
	}
	if n != 3 {
		t.Fatalf("want 3 nodes across blocks, got %d", n)
	}
}

// TestCFGEveryNodeOnce: a function mixing most control constructs must
// place every simple statement in exactly one reachable block — the
// invariant the dataflow analyses rely on to not double-count a Lock.
func TestCFGEveryNodeOnce(t *testing.T) {
	src := `package p
func f(xs []int, ch chan int, cond bool) int {
	total := 0
	for i, x := range xs {
		if x < 0 {
			continue
		}
		total += i
	}
loop:
	for i := 0; i < 10; i++ {
		switch {
		case cond:
			total++
			fallthrough
		case total > 5:
			break loop
		default:
			goto done
		}
		select {
		case v := <-ch:
			total += v
		default:
			total--
		}
	}
done:
	defer func() { total = 0 }()
	if total > 100 {
		panic("too big")
	}
	return total
}`
	c := buildTestCFG(t, src, "f")
	counts := make(map[ast.Node]int)
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			counts[n]++
		}
	}
	for n, k := range counts {
		if k != 1 {
			t.Errorf("node %T appears in %d blocks", n, k)
		}
	}
	// Spot the load-bearing statements: the assignment, the panic call, the
	// return. All must be reachable.
	reach := reachable(c)
	placed := 0
	for _, b := range c.Blocks {
		if len(b.Nodes) > 0 && reach[b] {
			placed += len(b.Nodes)
		}
	}
	if placed < 10 {
		t.Fatalf("only %d nodes reachable; CFG lost statements", placed)
	}
	if !reach[c.Exit] {
		t.Fatal("exit unreachable")
	}
}

// TestCFGBranching: if/else makes the condition block fan out and both arms
// rejoin before exit; return and panic edges go straight to exit.
func TestCFGBranching(t *testing.T) {
	c := buildTestCFG(t, `package p
func f(cond bool) int {
	if cond {
		return 1
	}
	panic("no")
}`, "f")
	preds := c.Preds()
	// Exit has (at least) the return path and the panic path.
	if len(preds[c.Exit]) < 2 {
		t.Fatalf("exit has %d predecessors, want >= 2", len(preds[c.Exit]))
	}
}

// TestCFGLoopBackEdge: a for loop produces a cycle in the graph.
func TestCFGLoopBackEdge(t *testing.T) {
	c := buildTestCFG(t, `package p
func f() {
	for i := 0; i < 3; i++ {
		_ = i
	}
}`, "f")
	// A back edge exists iff some reachable block can reach itself.
	reach := reachable(c)
	cyclic := false
	for b := range reach {
		seen := map[*CFGBlock]bool{}
		queue := append([]*CFGBlock(nil), b.Succs...)
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			if s == b {
				cyclic = true
				break
			}
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s.Succs...)
			}
		}
	}
	if !cyclic {
		t.Fatal("for loop produced no cycle")
	}
}

// TestCFGUnlockOnOnePath mirrors the lockorder use case: an early return
// means one path to exit holds a statement the other does not.
func TestCFGUnlockOnOnePath(t *testing.T) {
	c := buildTestCFG(t, `package p
func f(cond bool) {
	lock()
	if cond {
		return
	}
	unlock()
}`, "f")
	reach := reachable(c)
	if !reach[c.Exit] {
		t.Fatal("exit unreachable")
	}
	// The unlock statement's block must NOT dominate exit: there is a path
	// entry->exit avoiding it (the early return).
	var unlockBlock *CFGBlock
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "unlock" {
						unlockBlock = b
					}
				}
			}
		}
	}
	if unlockBlock == nil {
		t.Fatal("unlock statement not placed in any block")
	}
	// BFS from entry to exit avoiding unlockBlock.
	seen := map[*CFGBlock]bool{c.Entry: true}
	queue := []*CFGBlock{c.Entry}
	found := false
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if b == c.Exit {
			found = true
			break
		}
		for _, s := range b.Succs {
			if s != unlockBlock && !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	if !found {
		t.Fatal("no path to exit avoiding unlock; early return edge missing")
	}
}
