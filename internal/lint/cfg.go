package lint

import (
	"go/ast"
	"go/token"
)

// cfg.go is the intraprocedural control-flow-graph half of the
// whole-program foundation (callgraph.go is the other half). The lockorder
// analyzer runs a forward may-analysis over it to know which locks can be
// held at each statement; any future flow-sensitive analyzer reuses the
// same graph.
//
// The CFG is statement-granular: every basic block holds an ordered list of
// ast.Node entries that execute unconditionally once the block is entered.
// Compound statements are decomposed by the builder — only their own
// control expressions (an if condition, a switch tag, a range operand, a
// case expression list) land in blocks, never their nested bodies — so an
// analysis can walk each node in full without double-visiting.

// CFGBlock is one basic block.
type CFGBlock struct {
	// Nodes are the statements and control expressions executed in order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*CFGBlock
	// Index is the block's position in CFG.Blocks (stable build order).
	Index int
}

// CFG is the control-flow graph of one function body. Entry is the first
// block executed; Exit is a virtual block reached by every return, by
// falling off the end of the body, and by panic calls.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock
	Blocks []*CFGBlock
}

// Preds computes the predecessor lists of every block.
func (c *CFG) Preds() map[*CFGBlock][]*CFGBlock {
	preds := make(map[*CFGBlock][]*CFGBlock, len(c.Blocks))
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

type cfgBuilder struct {
	cfg *CFG
	cur *CFGBlock
	// loops is the stack of enclosing break/continue targets, innermost
	// last. Switches and selects push entries with a nil continue target.
	loops []cfgLoop
	// labels maps label names to their blocks for goto; gotos to labels not
	// yet seen are patched at the end.
	labels  map[string]*CFGBlock
	pending map[string][]*CFGBlock
}

type cfgLoop struct {
	label         string // enclosing label, "" when unlabeled
	breakTarget   *CFGBlock
	continueTgt   *CFGBlock // nil for switch/select entries
	isLoop        bool
	fallthroughTo *CFGBlock // next case body, switches only
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:     &CFG{},
		labels:  make(map[string]*CFGBlock),
		pending: make(map[string][]*CFGBlock),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(body.List, "")
	b.jump(b.cfg.Exit)
	// Unresolved gotos (labels inside blocks the builder skipped) fall
	// through to exit rather than dangling.
	for _, blocks := range b.pending {
		for _, blk := range blocks {
			blk.Succs = append(blk.Succs, b.cfg.Exit)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump terminates the current block with an edge to target and leaves the
// builder in a fresh unreachable block (for statements after a terminator).
func (b *cfgBuilder) jump(target *CFGBlock) {
	b.cur.Succs = append(b.cur.Succs, target)
	b.cur = b.newBlock()
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt, label string) {
	for _, s := range list {
		b.stmt(s, label)
		label = ""
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List, "")

	case *ast.LabeledStmt:
		// Land the label on a fresh block so gotos have a target.
		target := b.newBlock()
		b.cur.Succs = append(b.cur.Succs, target)
		b.cur = target
		b.labels[st.Label.Name] = target
		for _, src := range b.pending[st.Label.Name] {
			src.Succs = append(src.Succs, target)
		}
		delete(b.pending, st.Label.Name)
		b.stmt(st.Stmt, st.Label.Name)

	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		b.add(st.Cond)
		condBlock := b.cur
		join := b.newBlock()
		thenBlock := b.newBlock()
		condBlock.Succs = append(condBlock.Succs, thenBlock)
		b.cur = thenBlock
		b.stmt(st.Body, "")
		b.cur.Succs = append(b.cur.Succs, join)
		if st.Else != nil {
			elseBlock := b.newBlock()
			condBlock.Succs = append(condBlock.Succs, elseBlock)
			b.cur = elseBlock
			b.stmt(st.Else, "")
			b.cur.Succs = append(b.cur.Succs, join)
		} else {
			condBlock.Succs = append(condBlock.Succs, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		head := b.newBlock()
		b.cur.Succs = append(b.cur.Succs, head)
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, st.Cond)
		}
		join := b.newBlock()
		post := b.newBlock()
		if st.Cond != nil {
			head.Succs = append(head.Succs, join) // condition false
		}
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.loops = append(b.loops, cfgLoop{label: label, breakTarget: join, continueTgt: post, isLoop: true})
		b.cur = body
		b.stmt(st.Body, "")
		b.cur.Succs = append(b.cur.Succs, post)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = post
		if st.Post != nil {
			b.stmt(st.Post, "")
		}
		b.cur.Succs = append(b.cur.Succs, head)
		b.cur = join

	case *ast.RangeStmt:
		b.add(st.X)
		head := b.newBlock()
		b.cur.Succs = append(b.cur.Succs, head)
		join := b.newBlock()
		head.Succs = append(head.Succs, join) // range exhausted
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.loops = append(b.loops, cfgLoop{label: label, breakTarget: join, continueTgt: head, isLoop: true})
		b.cur = body
		b.stmt(st.Body, "")
		b.cur.Succs = append(b.cur.Succs, head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = join

	case *ast.SwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		b.add(st.Tag)
		b.caseClauses(st.Body, label, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt) {
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes, cc.Body
		})

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		b.add(st.Assign)
		b.caseClauses(st.Body, label, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt) {
			return nil, cc.Body
		})

	case *ast.SelectStmt:
		head := b.cur
		join := b.newBlock()
		b.loops = append(b.loops, cfgLoop{label: label, breakTarget: join})
		anyClause := false
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			anyClause = true
			clause := b.newBlock()
			head.Succs = append(head.Succs, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmts(cc.Body, "")
			b.cur.Succs = append(b.cur.Succs, join)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if !anyClause {
			head.Succs = append(head.Succs, join)
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.add(st)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.add(st)
		switch st.Tok {
		case token.BREAK:
			if t := b.findTarget(st.Label, false); t != nil {
				b.jump(t)
			} else {
				b.jump(b.cfg.Exit)
			}
		case token.CONTINUE:
			if t := b.findTarget(st.Label, true); t != nil {
				b.jump(t)
			} else {
				b.jump(b.cfg.Exit)
			}
		case token.GOTO:
			if t, ok := b.labels[st.Label.Name]; ok {
				b.jump(t)
			} else {
				src := b.cur
				b.pending[st.Label.Name] = append(b.pending[st.Label.Name], src)
				b.cur = b.newBlock()
			}
		case token.FALLTHROUGH:
			if n := len(b.loops); n > 0 && b.loops[n-1].fallthroughTo != nil {
				b.jump(b.loops[n-1].fallthroughTo)
			} else {
				b.cur = b.newBlock()
			}
		}

	case *ast.ExprStmt:
		b.add(st)
		if isPanicCall(st.X) {
			b.jump(b.cfg.Exit)
		}

	default:
		// Assignments, declarations, sends, inc/dec, defer, go, empty:
		// straight-line nodes.
		b.add(s)
	}
}

// caseClauses wires a switch-shaped body: each clause's guard expressions
// and body get their own blocks, every body exits to the join, and a
// missing default adds a head→join edge.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, label string, split func(*ast.CaseClause) ([]ast.Node, []ast.Stmt)) {
	head := b.cur
	join := b.newBlock()
	hasDefault := false
	// Pre-create body blocks so fallthrough can target the next clause.
	type clause struct {
		guard []ast.Node
		stmts []ast.Stmt
		block *CFGBlock
	}
	var clauses []clause
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		guard, stmts := split(cc)
		clauses = append(clauses, clause{guard: guard, stmts: stmts, block: b.newBlock()})
	}
	for i, cl := range clauses {
		head.Succs = append(head.Succs, cl.block)
		b.cur = cl.block
		b.cur.Nodes = append(b.cur.Nodes, cl.guard...)
		next := join
		if i+1 < len(clauses) {
			next = clauses[i+1].block
		}
		b.loops = append(b.loops, cfgLoop{label: label, breakTarget: join, fallthroughTo: next})
		b.stmts(cl.stmts, "")
		b.loops = b.loops[:len(b.loops)-1]
		b.cur.Succs = append(b.cur.Succs, join)
	}
	if !hasDefault || len(clauses) == 0 {
		head.Succs = append(head.Succs, join)
	}
	b.cur = join
}

// findTarget resolves a break (wantContinue=false) or continue target,
// optionally labeled. Continue skips non-loop entries (switch/select).
func (b *cfgBuilder) findTarget(label *ast.Ident, wantContinue bool) *CFGBlock {
	for i := len(b.loops) - 1; i >= 0; i-- {
		l := b.loops[i]
		if wantContinue && !l.isLoop {
			continue
		}
		if label != nil && l.label != label.Name {
			continue
		}
		if wantContinue {
			return l.continueTgt
		}
		return l.breakTarget
	}
	return nil
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
