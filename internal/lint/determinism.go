package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPackages are the packages whose outputs must be a pure
// function of their inputs: the CAPS search and its cost model, the
// baselines it is compared against, the simulator that scores plans, the
// experiment report paths serialized into golden files, and the metrics
// primitives those paths snapshot (meter rates take an injectable clock so
// replayed snapshots are exact).
var deterministicPackages = []string{
	"caps", "placement", "costmodel", "odrp", "simulator", "ds2", "experiments", "metrics",
}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandCtors are the math/rand top-level functions that do NOT draw
// from the package-global (unseeded) source.
var seededRandCtors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

var determinismAnalyzer = &Analyzer{
	Name:     "determinism",
	Doc:      "wall-clock reads, global math/rand and map iteration in deterministic packages",
	Packages: deterministicPackages,
	Run:      runDeterminism,
}

func runDeterminism(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		timeName := importedAs(f, "time")
		randName := importedAs(f, "math/rand")
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if name, ok := resolvePkgCall(p, f, x, "time", timeName); ok && wallClockFuncs[name] {
					d := diagAt(p, "determinism", x,
						"time.%s reads the wall clock inside a deterministic package; inject a clock.Clock (internal/clock) through the options instead", name)
					d.Suggestion = "opts.Now.OrSystem()() // thread a clock.Clock through Options.Now"
					out = append(out, d)
				}
				if name, ok := resolvePkgCall(p, f, x, "math/rand", randName); ok && !seededRandCtors[name] {
					d := diagAt(p, "determinism", x,
						"rand.%s draws from the process-global source; use rand.New(rand.NewSource(seed)) so runs replay", name)
					d.Suggestion = "rng := rand.New(rand.NewSource(seed)); rng." + name + "(...)"
					out = append(out, d)
				}
			case *ast.RangeStmt:
				if d, bad := mapRangeDiag(p, x); bad {
					out = append(out, d)
				}
			}
			return true
		})
	}
	return out
}

// resolvePkgCall reports whether call invokes a package-level function of
// pkgPath and returns its name. Type information is authoritative; when the
// checker could not resolve the callee, a syntactic match on the file's
// import name is used instead.
func resolvePkgCall(p *Package, f *ast.File, call *ast.CallExpr, pkgPath, localName string) (string, bool) {
	if name, path, ok := pkgFuncObj(p, call.Fun); ok {
		return name, path == pkgPath
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || localName == "" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != localName {
		return "", false
	}
	if obj, resolved := p.Info.Uses[id]; resolved {
		if _, isPkg := obj.(*types.PkgName); !isPkg {
			return "", false // shadowed by a local binding
		}
	}
	return sel.Sel.Name, true
}

// mapRangeDiag flags ranges over maps whose iteration order can leak into
// the result. Two single-statement bodies are recognized as order-
// insensitive idioms and skipped:
//
//	s = append(s, ...)   // gather, with the sort expected to follow
//	m2[k] = ...          // rebuild keyed by the (injective) range key
func mapRangeDiag(p *Package, rs *ast.RangeStmt) (Diagnostic, bool) {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return Diagnostic{}, false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return Diagnostic{}, false
	}
	// `for range m` only counts; order cannot be observed.
	if rs.Key == nil {
		return Diagnostic{}, false
	}
	keyName := ""
	if id, ok := rs.Key.(*ast.Ident); ok {
		keyName = id.Name
	}
	if keyName == "_" && rs.Value == nil {
		return Diagnostic{}, false
	}
	if orderInsensitiveBody(p, rs.Body, keyName) {
		return Diagnostic{}, false
	}
	d := diagAt(p, "determinism", rs,
		"map iteration order is nondeterministic and this loop body observes it; collect and sort the keys first")
	d.Suggestion = "keys := make([]K, 0, len(m)); for k := range m { keys = append(keys, k) }; sort/slices.Sort(keys); for _, k := range keys { ... }"
	return d, true
}

func orderInsensitiveBody(p *Package, body *ast.BlockStmt, keyName string) bool {
	if len(body.List) != 1 {
		return false
	}
	as, ok := body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	// Gather idiom: s = append(s, ...).
	if call, isCall := as.Rhs[0].(*ast.CallExpr); isCall {
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "append" && len(call.Args) >= 2 {
			if lhs := exprString(as.Lhs[0]); lhs != "" && lhs == exprString(call.Args[0]) {
				return true
			}
		}
	}
	// Rebuild idiom: m2[k] = v with k the range key (injective, so no
	// last-writer-wins ambiguity).
	if ix, isIndex := as.Lhs[0].(*ast.IndexExpr); isIndex && keyName != "" && keyName != "_" {
		if id, isIdent := ix.Index.(*ast.Ident); isIdent && id.Name == keyName {
			if mt := p.Info.TypeOf(ix.X); mt != nil {
				if _, isMap := mt.Underlying().(*types.Map); isMap {
					return true
				}
			}
		}
	}
	return false
}
