package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// callgraph.go is the interprocedural half of the whole-program foundation:
// a static call graph over every function declared in the loaded packages.
// Resolution is purely static — an interface-method call resolves to the
// interface method object, not to implementations — which keeps the graph
// an under-approximation of dynamic dispatch and an over-approximation of
// nothing. The lockorder analyzer propagates held-lock sets along it; any
// future summary-based analyzer (escape, purity, blocking) starts here.

// CGNode is one declared function with a body.
type CGNode struct {
	// Fn is the function's type object (identity is program-wide thanks to
	// the loader's checked-once discipline).
	Fn *types.Func
	// Pkg is the package declaring the body.
	Pkg *Package
	// Decl is the declaration.
	Decl *ast.FuncDecl
	// Calls are the statically resolved call sites inside the body,
	// including calls inside nested function literals.
	Calls []CallSite
}

// CallSite is one resolved call inside a function body.
type CallSite struct {
	// Callee is the called function object (may or may not have a CGNode:
	// stdlib and interface methods have none).
	Callee *types.Func
	// Call is the call expression.
	Call *ast.CallExpr
	// NewGoroutine marks calls that run on a fresh goroutine: the direct
	// call of a `go` statement, or a call inside a function literal that a
	// `go` statement launches. Same-goroutine analyses (lock ordering)
	// exclude these.
	NewGoroutine bool
}

// CallGraph is the program's static call graph.
type CallGraph struct {
	nodes map[*types.Func]*CGNode
}

// Node returns the graph node for fn, or nil when fn has no body in the
// program.
func (g *CallGraph) Node(fn *types.Func) *CGNode { return g.nodes[fn] }

// Nodes lists every node in deterministic (declaration position) order.
func (g *CallGraph) Nodes() []*CGNode {
	out := make([]*CGNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decl.Pos() < out[j].Decl.Pos() })
	return out
}

// buildCallGraph constructs the call graph of the whole program.
func buildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*CGNode)}
	for _, p := range prog.Packages {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.nodes[fn] = &CGNode{Fn: fn, Pkg: p, Decl: fd}
			}
		}
	}
	for _, node := range g.nodes {
		collectCalls(node)
	}
	return g
}

// collectCalls resolves every call site in the node's body, tracking which
// calls execute on a new goroutine.
func collectCalls(node *CGNode) {
	var stack []ast.Node
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(node.Pkg, call)
		if callee == nil {
			return true
		}
		node.Calls = append(node.Calls, CallSite{
			Callee:       callee,
			Call:         call,
			NewGoroutine: inGoContext(stack),
		})
		return true
	})
	sort.Slice(node.Calls, func(i, j int) bool { return node.Calls[i].Call.Pos() < node.Calls[j].Call.Pos() })
}

// calleeOf resolves the static callee function object of a call, or nil for
// builtins, conversions, and calls through function-typed values.
func calleeOf(p *Package, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch x := fun.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// inGoContext reports whether the call on top of the ancestry stack runs on
// a goroutine freshly launched by an enclosing `go` statement: it is the
// statement's direct call, or it sits in the body of the function literal
// the statement invokes. Calls in the launched call's argument list still
// run on the launching goroutine and report false.
func inGoContext(stack []ast.Node) bool {
	for j := 0; j+1 < len(stack); j++ {
		gs, ok := stack[j].(*ast.GoStmt)
		if !ok {
			continue
		}
		launched := ast.Node(gs.Call)
		if stack[j+1] != launched {
			continue
		}
		if stack[len(stack)-1] == launched {
			return true
		}
		if j+2 < len(stack) {
			if lit, isLit := stack[j+2].(*ast.FuncLit); isLit && ast.Unparen(gs.Call.Fun) == ast.Expr(lit) {
				return true
			}
		}
	}
	return false
}
